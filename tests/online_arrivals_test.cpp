// Online/streaming arrival coverage: ArrivalProcess contract and
// replay determinism, per-message latency metrics against a
// hand-computed fixture, streaming SolveTracker behavior, and
// end-to-end streaming runs under the adversarial schedulers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/arrival.h"
#include "core/experiment.h"
#include "graph/generators.h"
#include "mac/trace_checker.h"
#include "test_util.h"

namespace ammb {
namespace {

using core::Arrival;
using core::ArrivalProcess;
using core::Experiment;
using core::RunConfig;
using core::SchedulerKind;
namespace gen = graph::gen;
using testutil::stdParams;

/// Drains a process and asserts the stream contract along the way.
std::vector<Arrival> drainChecked(ArrivalProcess& process, NodeId n) {
  std::vector<Arrival> out;
  Time last = 0;
  while (const auto arrival = process.next()) {
    EXPECT_GE(arrival->at, last) << "arrival times must be nondecreasing";
    last = arrival->at;
    EXPECT_GE(arrival->node, 0);
    EXPECT_LT(arrival->node, n);
    EXPECT_GE(arrival->msg, 0);
    EXPECT_LT(arrival->msg, process.k());
    out.push_back(*arrival);
  }
  EXPECT_FALSE(process.next().has_value()) << "exhausted streams stay dry";
  EXPECT_EQ(out.size(), static_cast<std::size_t>(process.k()));
  return out;
}

void expectSameStream(const std::vector<Arrival>& a,
                      const std::vector<Arrival>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "index " << i;
    EXPECT_EQ(a[i].msg, b[i].msg) << "index " << i;
    EXPECT_EQ(a[i].at, b[i].at) << "index " << i;
  }
}

TEST(ArrivalProcess, WorkloadAdapterReplaysInTimeOrder) {
  core::MmbWorkload w;
  w.k = 3;
  w.arrivals = {{2, 0, 50}, {1, 1, 0}, {0, 2, 25}};  // deliberately unsorted
  core::WorkloadArrivalProcess process(w);
  const auto stream = drainChecked(process, 3);
  EXPECT_EQ(stream[0].msg, 1);
  EXPECT_EQ(stream[1].msg, 2);
  EXPECT_EQ(stream[2].msg, 0);
  process.reset();
  expectSameStream(stream, drainChecked(process, 3));
}

TEST(ArrivalProcess, BuildersAreSeedDeterministicAcrossReplays) {
  const int k = 32;
  const NodeId n = 20;
  const auto build = [&](int which, std::uint64_t seed)
      -> std::unique_ptr<ArrivalProcess> {
    switch (which) {
      case 0:
        return std::make_unique<core::PoissonArrivalProcess>(k, n, 12.5, seed);
      case 1:
        return std::make_unique<core::BurstyArrivalProcess>(k, n, 5, 40, seed);
      default:
        return std::make_unique<core::StaggeredArrivalProcess>(k, n, 4, 30);
    }
  };
  for (int which : {0, 1, 2}) {
    SCOPED_TRACE("process kind " + std::to_string(which));
    auto p1 = build(which, 7);
    auto p2 = build(which, 7);
    const auto s1 = drainChecked(*p1, n);
    expectSameStream(s1, drainChecked(*p2, n));  // same args, same stream
    p1->reset();
    expectSameStream(s1, drainChecked(*p1, n));  // reset() replays
  }
  // A different seed virtually always moves some random arrival.
  auto pa = build(0, 7);
  auto pb = build(0, 8);
  const auto sa = drainChecked(*pa, n);
  const auto sb = drainChecked(*pb, n);
  bool differs = false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    differs = differs || sa[i].node != sb[i].node || sa[i].at != sb[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(ArrivalProcess, StaggeredSpreadsSourcesAndPhases) {
  core::StaggeredArrivalProcess process(8, 16, 4, 40);
  const auto stream = drainChecked(process, 16);
  // 4 sources at nodes 0, 4, 8, 12; two messages each; phase 10.
  EXPECT_EQ(stream[0].node, 0);
  EXPECT_EQ(stream[0].at, 0);
  EXPECT_EQ(stream[1].node, 4);
  EXPECT_EQ(stream[1].at, 10);
  EXPECT_EQ(stream[2].node, 8);
  EXPECT_EQ(stream[2].at, 20);
  EXPECT_EQ(stream[3].node, 12);
  EXPECT_EQ(stream[3].at, 30);
  EXPECT_EQ(stream[4].node, 0);
  EXPECT_EQ(stream[4].at, 40);
}

TEST(ArrivalProcess, ValidatesItsArguments) {
  EXPECT_THROW(core::PoissonArrivalProcess(0, 4, 1.0, 1), Error);
  EXPECT_THROW(core::PoissonArrivalProcess(1, 0, 1.0, 1), Error);
  EXPECT_THROW(core::PoissonArrivalProcess(1, 4, -1.0, 1), Error);
  EXPECT_THROW(core::BurstyArrivalProcess(4, 4, 0, 10, 1), Error);
  EXPECT_THROW(core::BurstyArrivalProcess(4, 4, 2, -1, 1), Error);
  EXPECT_THROW(core::StaggeredArrivalProcess(4, 4, 0, 10), Error);
  EXPECT_THROW(core::StaggeredArrivalProcess(4, 4, 5, 10), Error);
}

TEST(MessageMetrics, MatchHandComputedLineFixture) {
  // line(4), fast scheduler (one tick per hop), two messages at node 0
  // far apart in time: each floods the line in exactly 3 ticks.
  //   msg 0 arrives t=0,   last required delivery t=3   -> latency 3
  //   msg 1 arrives t=100, last required delivery t=103 -> latency 3
  const auto topo = gen::identityDual(gen::line(4));
  core::MmbWorkload w;
  w.k = 2;
  w.arrivals = {{0, 0, 0}, {0, 1, 100}};
  RunConfig config;
  config.mac = stdParams(4, 32);
  config.scheduler = SchedulerKind::kFast;
  Experiment experiment(topo, core::bmmbProtocol(), w, config);
  const auto result = experiment.run();
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.solveTime, 103);

  const core::MessageMetrics& m = result.messages;
  ASSERT_EQ(m.perMessage.size(), 2u);
  EXPECT_EQ(m.arrived, 2u);
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.perMessage[0].arriveAt, 0);
  EXPECT_EQ(m.perMessage[0].completeAt, 3);
  EXPECT_EQ(m.perMessage[0].latency(), 3);
  EXPECT_EQ(m.perMessage[1].arriveAt, 100);
  EXPECT_EQ(m.perMessage[1].completeAt, 103);
  EXPECT_EQ(m.perMessage[1].latency(), 3);
  EXPECT_EQ(m.p50Latency, 3);
  EXPECT_EQ(m.p95Latency, 3);
  EXPECT_EQ(m.maxLatency, 3);
  EXPECT_DOUBLE_EQ(m.meanLatency, 3.0);
}

TEST(MessageMetrics, TruncatedRunsReportPartialCompletion) {
  const auto topo = gen::identityDual(gen::line(30));
  core::MmbWorkload w;
  w.k = 2;
  w.arrivals = {{0, 0, 0}, {0, 1, 5'000}};  // far beyond the time limit
  RunConfig config;
  config.mac = stdParams(4, 64);
  config.scheduler = SchedulerKind::kSlowAck;
  config.limits.maxTime = 1'000;  // enough for msg 0, not for msg 1
  const auto result =
      core::runExperiment(topo, core::bmmbProtocol(), w, config);
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(result.messages.arrived, 1u);
  EXPECT_EQ(result.messages.completed, 1u);
  EXPECT_TRUE(result.messages.perMessage[0].completed());
  EXPECT_FALSE(result.messages.perMessage[1].completed());
  EXPECT_EQ(result.messages.perMessage[1].arriveAt, kTimeNever);
}

TEST(SolveTracker, StreamingRegistersRequirementsPerArrival) {
  const auto topo = gen::identityDual(gen::line(3));
  core::SolveTracker tracker(topo, /*k=*/1);
  EXPECT_EQ(tracker.remaining(), 0);
  EXPECT_FALSE(tracker.solved());
  tracker.onArrive(0, 0, 5);
  EXPECT_EQ(tracker.remaining(), 3);
  EXPECT_EQ(tracker.arrivedMessages(), 1);
  tracker.onDeliver(0, 0, 5);
  tracker.onDeliver(1, 0, 7);
  EXPECT_FALSE(tracker.solved());
  tracker.onDeliver(2, 0, 9);
  // All registered requirements are met, but the stream has not been
  // declared exhausted — a later arrival could still add requirements.
  EXPECT_FALSE(tracker.solved());
  tracker.markArrivalsComplete(9);
  ASSERT_TRUE(tracker.solved());
  EXPECT_EQ(tracker.solveTime(), 9);
  const auto metrics = tracker.metrics();
  EXPECT_EQ(metrics.perMessage[0].arriveAt, 5);
  EXPECT_EQ(metrics.perMessage[0].completeAt, 9);
  EXPECT_EQ(metrics.maxLatency, 4);
  // A later duplicate arrival whose requirements are all met already
  // neither reopens the problem nor disturbs the metrics.
  tracker.onArrive(2, 0, 11);
  EXPECT_TRUE(tracker.solved());
  EXPECT_EQ(tracker.metrics().perMessage[0].completeAt, 9);
  // Out-of-range observations are rejected.
  EXPECT_THROW(tracker.onArrive(3, 0, 1), Error);
  EXPECT_THROW(tracker.onArrive(0, 1, 1), Error);
}

TEST(OnlineArrivals, LateRearrivalInAnotherComponentDefersSolve) {
  // Regression: message 0 arrives at t=0 in component {0,1} and again
  // at t=500 in component {2,3}.  A stopOnSolve run must not declare
  // the problem solved after the first component's deliveries — the
  // pending stream still owes requirements to the second one.
  graph::Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  g.finalize();
  const auto topo = gen::identityDual(std::move(g));
  core::MmbWorkload w;
  w.k = 1;
  w.arrivals = {{0, 0, 0}, {2, 0, 500}};
  RunConfig config;
  config.mac = stdParams(4, 32);
  config.scheduler = SchedulerKind::kFast;
  Experiment experiment(topo, core::bmmbProtocol(), w, config);
  const auto result = experiment.run();
  ASSERT_TRUE(result.solved);
  EXPECT_GE(result.solveTime, 500);
  const auto mmb = core::checkMmbTrace(topo, w, experiment.engine().trace());
  EXPECT_TRUE(mmb.ok) << (mmb.ok ? "" : mmb.violations.front());
}

TEST(OnlineArrivals, StreamingSolvesUnderAdversarialSchedulers) {
  Rng topoRng(13);
  const auto topo = gen::withArbitraryNoise(gen::grid(5, 4), 8, topoRng);
  for (SchedulerKind sched :
       {SchedulerKind::kAdversarial, SchedulerKind::kAdversarialStuffing}) {
    SCOPED_TRACE(core::toString(sched));
    core::PoissonArrivalProcess arrivals(6, topo.n(), 25.0, 11);
    RunConfig config;
    config.mac = stdParams(4, 48);
    config.scheduler = sched;
    Experiment experiment(topo, core::bmmbProtocol(), arrivals, config);
    const auto result = experiment.run();
    ASSERT_TRUE(result.solved);
    EXPECT_EQ(result.messages.completed, 6u);
    EXPECT_GT(result.messages.maxLatency, 0);
    EXPECT_LE(result.messages.p50Latency, result.messages.p95Latency);
    EXPECT_LE(result.messages.p95Latency, result.messages.maxLatency);
    // The adversary must play by the rules even with online arrivals.
    const auto macCheck =
        mac::checkTrace(topo, config.mac, experiment.engine().trace());
    EXPECT_TRUE(macCheck.ok) << macCheck.summary();
    const auto workload = core::materializeWorkload(arrivals);
    const auto mmbCheck =
        core::checkMmbTrace(topo, workload, experiment.engine().trace());
    EXPECT_TRUE(mmbCheck.ok)
        << (mmbCheck.ok ? "" : mmbCheck.violations.front());
  }
}

TEST(OnlineArrivals, StreamedAndEagerWorkloadsAgree) {
  // The same arrival set injected lazily (stream) and eagerly
  // (pre-materialized vector) produces the same execution whenever
  // arrivals cannot tie with in-flight protocol events — here the
  // batch gap (5000 ticks) dwarfs the per-batch quiesce time
  // (~(D + k) Fack = 350), so every batch lands on an idle network.
  const auto topo = gen::identityDual(gen::grid(4, 4));
  RunConfig config;
  config.mac = stdParams(4, 32);
  config.scheduler = SchedulerKind::kRandom;
  config.recordTrace = false;
  core::BurstyArrivalProcess stream(8, topo.n(), 3, 5000, 21);
  const auto eager = core::materializeWorkload(stream);
  const auto viaStream =
      core::runExperiment(topo, core::bmmbProtocol(), stream, config);
  const auto viaVector =
      core::runExperiment(topo, core::bmmbProtocol(), eager, config);
  ASSERT_TRUE(viaStream.solved && viaVector.solved);
  EXPECT_EQ(viaStream.solveTime, viaVector.solveTime);
  EXPECT_EQ(viaStream.stats.rcvs, viaVector.stats.rcvs);
  EXPECT_EQ(viaStream.messages.p95Latency, viaVector.messages.p95Latency);
}

}  // namespace
}  // namespace ammb
