// Lower-bound constructions: the Figure-2 network C adversary
// (Lemmas 3.19/3.20, Theorem 3.17) and the bridge-star choke point
// (Lemma 3.18).  Each test asserts BOTH that the adversary achieves the
// paper's delay AND that its execution is model-compliant (the trace
// checker accepts it) — an adversary that cheats proves nothing.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "graph/generators.h"
#include "mac/trace_checker.h"
#include "test_util.h"

namespace ammb {
namespace {

using core::RunConfig;
using core::SchedulerKind;
namespace gen = graph::gen;
using testutil::stdParams;

/// Endpoint-oriented workload on network C: m0 at a_0, m1 at b_0.
core::MmbWorkload endpointWorkload() {
  core::MmbWorkload w;
  w.k = 2;
  w.arrivals = {{0, 0}, {0, 1}};
  return w;
}

TEST(LowerBound, NetworkCDelaysBmmbByOmegaDFack) {
  for (int D : {4, 8, 16, 32}) {
    const auto topo = gen::lowerBoundNetworkC(D);
    core::MmbWorkload w;
    w.k = 2;
    w.arrivals = {{0, 0}, {static_cast<NodeId>(D), 1}};  // a_0, b_0
    RunConfig config;
    config.mac = stdParams(4, 64);
    config.scheduler = SchedulerKind::kLowerBound;
    config.scheduler.lowerBoundLineLength = D;
    core::Experiment experiment(topo, core::bmmbProtocol(), w, config);
    const auto result = experiment.run();
    ASSERT_TRUE(result.solved) << "D=" << D;
    // The frontier advances one hop per Fack: (D-1) stages.
    EXPECT_GE(result.solveTime, static_cast<Time>(D - 1) * config.mac.fack)
        << "D=" << D;
    // The adversary must play by the rules.
    const auto check =
        mac::checkTrace(topo, config.mac, experiment.engine().trace());
    EXPECT_TRUE(check.ok) << "D=" << D << ": " << check.summary();
    const auto mmb =
        core::checkMmbTrace(topo, w, experiment.engine().trace());
    EXPECT_TRUE(mmb.ok);
  }
}

TEST(LowerBound, NetworkCDelayScalesLinearlyWithD) {
  auto solveFor = [](int D) {
    const auto topo = gen::lowerBoundNetworkC(D);
    core::MmbWorkload w;
    w.k = 2;
    w.arrivals = {{0, 0}, {static_cast<NodeId>(D), 1}};
    RunConfig config;
    config.mac = stdParams(4, 64);
    config.scheduler = SchedulerKind::kLowerBound;
    config.scheduler.lowerBoundLineLength = D;
    const auto result = core::runExperiment(topo, core::bmmbProtocol(), w, config);
    EXPECT_TRUE(result.solved);
    return result.solveTime;
  };
  const Time t8 = solveFor(8);
  const Time t32 = solveFor(32);
  // Quadrupling D roughly quadruples the delay (both are ~(D-1)Fack).
  EXPECT_GE(t32, 3 * t8);
}

TEST(LowerBound, WithoutCrossEdgesTheSameScheduleIsIllegal) {
  // Sanity check on the mechanism: on the same two lines with G' = G,
  // the adversary has no junk to feed the progress guard, so BMMB
  // finishes in O(D Fprog + k Fack) even under the strongest generic
  // adversary — the cross edges are what make the lower bound possible.
  const int D = 16;
  graph::Graph g(2 * D);
  for (int i = 0; i + 1 < D; ++i) {
    g.addEdge(i, i + 1);
    g.addEdge(D + i, D + i + 1);
  }
  g.finalize();
  const auto topo = gen::identityDual(std::move(g));
  core::MmbWorkload w;
  w.k = 2;
  w.arrivals = {{0, 0}, {static_cast<NodeId>(D), 1}};
  RunConfig config;
  config.mac = stdParams(4, 64);
  config.scheduler = SchedulerKind::kAdversarial;
  const auto result = core::runExperiment(topo, core::bmmbProtocol(), w, config);
  ASSERT_TRUE(result.solved);
  // Far below (D-1) Fack = 960: one Fprog per hop plus one Fack tail.
  EXPECT_LE(result.solveTime,
            core::bmmbRRestrictedBound(D - 1, 2, 1, config.mac));
}

TEST(LowerBound, BridgeStarChokesAtKFack) {
  for (int k : {4, 8, 16}) {
    const auto topo = gen::bridgeStar(k);
    // One message per leaf and one at the center (singleton assignment).
    core::MmbWorkload w;
    w.k = k;
    for (MsgId m = 0; m < k; ++m) {
      w.arrivals.push_back(core::Arrival{static_cast<NodeId>(m), m, 0});
    }
    RunConfig config;
    config.mac = stdParams(4, 64);
    config.scheduler = SchedulerKind::kSlowAck;
    core::Experiment experiment(topo, core::bmmbProtocol(), w, config);
    const auto result = experiment.run();
    ASSERT_TRUE(result.solved) << "k=" << k;
    // The center forwards k messages one Fack at a time.
    EXPECT_GE(result.solveTime, static_cast<Time>(k - 1) * config.mac.fack);
    EXPECT_LE(result.solveTime,
              static_cast<Time>(k + 1) * config.mac.fack);
    const auto check =
        mac::checkTrace(topo, config.mac, experiment.engine().trace());
    EXPECT_TRUE(check.ok) << check.summary();
  }
}

TEST(LowerBound, NetworkCExecutionUsesUselessCrossDeliveries) {
  const int D = 12;
  const auto topo = gen::lowerBoundNetworkC(D);
  core::MmbWorkload w;
  w.k = 2;
  w.arrivals = {{0, 0}, {static_cast<NodeId>(D), 1}};
  RunConfig config;
  config.mac = stdParams(4, 64);
  config.scheduler = SchedulerKind::kLowerBound;
  config.scheduler.lowerBoundLineLength = D;
  core::Experiment experiment(topo, core::bmmbProtocol(), w, config);
  ASSERT_TRUE(experiment.run().solved);
  // Count deliveries over unreliable edges: the schedule lives on them.
  std::size_t cross = 0;
  for (const auto& inst : experiment.engine().instances()) {
    for (NodeId r : inst.deliveredTo) {
      if (topo.isUnreliableOnlyEdge(inst.sender, r)) ++cross;
    }
  }
  EXPECT_GE(cross, static_cast<std::size_t>(D));
}

TEST(LowerBound, SchedulerRequiresMatchingTopology) {
  const auto topo = gen::lowerBoundNetworkC(8);
  RunConfig config;
  config.mac = stdParams();
  config.scheduler = SchedulerKind::kLowerBound;
  config.scheduler.lowerBoundLineLength = 6;  // wrong D
  EXPECT_THROW(core::Experiment(topo, core::bmmbProtocol(),
                              endpointWorkload(), config),
               Error);
}

}  // namespace
}  // namespace ammb
