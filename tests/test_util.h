// Shared helpers for the ammb test suite.
#pragma once

#include "mac/params.h"

namespace ammb::testutil {

/// Standard-model parameters with the given timing constants.
inline mac::MacParams stdParams(Time fprog = 4, Time fack = 32) {
  mac::MacParams p;
  p.fprog = fprog;
  p.fack = fack;
  p.variant = mac::ModelVariant::kStandard;
  return p;
}

/// Enhanced-model parameters with the given timing constants.
inline mac::MacParams enhParams(Time fprog = 4, Time fack = 32) {
  mac::MacParams p = stdParams(fprog, fack);
  p.variant = mac::ModelVariant::kEnhanced;
  return p;
}

}  // namespace ammb::testutil
