// Tests for the lock-step round driver (core/rounds.h): boundary
// timing, boundary aborts, and standard-model rejection.
#include <gtest/gtest.h>

#include "core/rounds.h"
#include "graph/generators.h"
#include "mac/engine.h"
#include "mac/schedulers.h"
#include "test_util.h"

namespace ammb {
namespace {

namespace gen = graph::gen;
using testutil::enhParams;
using testutil::stdParams;

/// Records the time of every round start; broadcasts in even rounds.
class Recorder : public core::RoundedProcess {
 public:
  std::vector<Time> startTimes;
  int abortsSeen = 0;

 protected:
  void onRoundStart(mac::Context& ctx, std::int64_t round) override {
    startTimes.push_back(ctx.now());
    if (ctx.id() == 0 && round % 2 == 0 && round < 10) {
      mac::Packet p;
      p.tag = static_cast<std::int32_t>(round);
      ctx.bcast(std::move(p));
    }
  }
};

TEST(Rounds, BoundariesAreExactMultiplesOfFprogPlusOne) {
  const auto topo = gen::identityDual(gen::line(2));
  Recorder* r0 = nullptr;
  mac::MacEngine engine(topo, enhParams(4, 64),
                        std::make_unique<mac::FastScheduler>(),
                        [&r0](NodeId node) {
                          auto p = std::make_unique<Recorder>();
                          if (node == 0) r0 = p.get();
                          return p;
                        },
                        1);
  const Time roundLen = 5;  // fprog + 1
  engine.run(roundLen * 8);
  ASSERT_NE(r0, nullptr);
  ASSERT_GE(r0->startTimes.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(r0->startTimes[i], static_cast<Time>(i) * roundLen);
  }
}

TEST(Rounds, SlowAcksAreAbortedAtTheBoundary) {
  const auto topo = gen::identityDual(gen::line(2));
  mac::MacEngine engine(topo, enhParams(4, 64),
                        std::make_unique<mac::SlowAckScheduler>(),
                        [](NodeId) { return std::make_unique<Recorder>(); },
                        1);
  engine.run(5 * 12);
  // Broadcasts in rounds 0,2,4,6,8: each took the full round and was
  // aborted at the boundary (the slow ack would only come at 64).
  EXPECT_EQ(engine.stats().bcasts, 5u);
  EXPECT_EQ(engine.stats().aborts, 5u);
  EXPECT_EQ(engine.stats().acks, 0u);
  // The slow-ack deliveries at fprog=4 still landed inside each round.
  EXPECT_EQ(engine.stats().rcvs, 5u);
}

TEST(Rounds, FastAcksNeedNoAbort) {
  const auto topo = gen::identityDual(gen::line(2));
  mac::MacEngine engine(topo, enhParams(4, 64),
                        std::make_unique<mac::FastScheduler>(),
                        [](NodeId) { return std::make_unique<Recorder>(); },
                        1);
  engine.run(5 * 12);
  EXPECT_EQ(engine.stats().aborts, 0u);
  EXPECT_EQ(engine.stats().acks, engine.stats().bcasts);
}

TEST(Rounds, RequiresEnhancedModel) {
  const auto topo = gen::identityDual(gen::line(2));
  mac::MacEngine engine(topo, stdParams(4, 64),
                        std::make_unique<mac::FastScheduler>(),
                        [](NodeId) { return std::make_unique<Recorder>(); },
                        1);
  // RoundedProcess::onWake calls ctx.fprog(), an enhanced-only API.
  EXPECT_THROW(engine.run(), Error);
}

}  // namespace
}  // namespace ammb
