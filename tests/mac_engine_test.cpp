// Unit tests for the MAC engine: API contracts, plan validation,
// standard/enhanced model split, abort semantics, progress forcing.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mac/engine.h"
#include "mac/schedulers.h"
#include "mac/trace_checker.h"
#include "test_util.h"

namespace ammb::mac {
namespace {

namespace gen = graph::gen;
using testutil::enhParams;
using testutil::stdParams;

/// A process that broadcasts `count` data packets back to back.
class ChainSender : public Process {
 public:
  explicit ChainSender(int count) : remaining_(count) {}
  void onWake(Context& ctx) override { sendNext(ctx); }
  void onAck(Context& ctx, const Packet&) override { sendNext(ctx); }

 private:
  void sendNext(Context& ctx) {
    if (remaining_ <= 0) return;
    --remaining_;
    Packet p;
    p.msgs = {0};
    ctx.bcast(std::move(p));
  }
  int remaining_;
};

/// A silent process.
class Idle : public Process {};

MacEngine::ProcessFactory idleFactory() {
  return [](NodeId) { return std::make_unique<Idle>(); };
}

TEST(MacEngine, WakeHappensBeforeArrivals) {
  const auto topo = gen::identityDual(gen::line(2));
  std::vector<std::string> log;
  class Recorder : public Process {
   public:
    explicit Recorder(std::vector<std::string>& log) : log_(log) {}
    void onWake(Context&) override { log_.push_back("wake"); }
    void onArrive(Context&, MsgId) override { log_.push_back("arrive"); }

   private:
    std::vector<std::string>& log_;
  };
  MacEngine engine(
      topo, stdParams(), std::make_unique<FastScheduler>(),
      [&log](NodeId) { return std::make_unique<Recorder>(log); }, 1);
  engine.injectArriveAt(0, 0, 0);
  engine.run();
  ASSERT_EQ(log.size(), 3u);  // two wakes, one arrive
  EXPECT_EQ(log[0], "wake");
  EXPECT_EQ(log[1], "wake");
  EXPECT_EQ(log[2], "arrive");
}

TEST(MacEngine, DoubleBcastViolatesWellFormedness) {
  const auto topo = gen::identityDual(gen::line(2));
  class DoubleSender : public Process {
   public:
    void onWake(Context& ctx) override {
      Packet a;
      ctx.bcast(std::move(a));
      Packet b;
      ctx.bcast(std::move(b));  // before the ack: must throw
    }
  };
  MacEngine engine(topo, stdParams(), std::make_unique<FastScheduler>(),
                   [](NodeId) { return std::make_unique<DoubleSender>(); }, 1);
  EXPECT_THROW(engine.run(), Error);
}

TEST(MacEngine, PacketCapacityEnforced) {
  const auto topo = gen::identityDual(gen::line(2));
  class FatSender : public Process {
   public:
    void onWake(Context& ctx) override {
      Packet p;
      p.msgs = {0, 1, 2};
      ctx.bcast(std::move(p));
    }
  };
  auto params = stdParams();
  params.msgCapacity = 2;
  MacEngine engine(topo, params, std::make_unique<FastScheduler>(),
                   [](NodeId) { return std::make_unique<FatSender>(); }, 1);
  EXPECT_THROW(engine.run(), Error);
}

TEST(MacEngine, StandardModelForbidsEnhancedApis) {
  const auto topo = gen::identityDual(gen::line(2));
  class Cheater : public Process {
   public:
    void onWake(Context& ctx) override { ctx.setTimerAfter(1); }
  };
  MacEngine engine(topo, stdParams(), std::make_unique<FastScheduler>(),
                   [](NodeId) { return std::make_unique<Cheater>(); }, 1);
  EXPECT_THROW(engine.run(), Error);
}

TEST(MacEngine, StandardModelForbidsClockAndAbort) {
  const auto topo = gen::identityDual(gen::line(2));
  class ClockCheater : public Process {
   public:
    void onWake(Context& ctx) override { (void)ctx.now(); }
  };
  MacEngine e1(topo, stdParams(), std::make_unique<FastScheduler>(),
               [](NodeId) { return std::make_unique<ClockCheater>(); }, 1);
  EXPECT_THROW(e1.run(), Error);

  class AbortCheater : public Process {
   public:
    void onWake(Context& ctx) override {
      Packet p;
      ctx.bcast(std::move(p));
      ctx.abortBcast();
    }
  };
  MacEngine e2(topo, stdParams(), std::make_unique<FastScheduler>(),
               [](NodeId) { return std::make_unique<AbortCheater>(); }, 1);
  EXPECT_THROW(e2.run(), Error);
}

// --- scheduler plan validation ---------------------------------------------

/// Scheduler returning a fixed broken plan (configured per test).
class BrokenScheduler : public Scheduler {
 public:
  enum class Flaw { kLateAck, kMissGNeighbor, kDuplicateTarget, kOutsideGp,
                    kDeliveryAfterAck };
  explicit BrokenScheduler(Flaw flaw) : flaw_(flaw) {}

  DeliveryPlan planBcast(const Instance& inst) override {
    const MacParams& p = engine_->params();
    const auto& topo = engine_->topology();
    DeliveryPlan plan;
    plan.ackAt = inst.bcastAt + p.fack;
    for (NodeId j : topo.g().neighbors(inst.sender)) {
      plan.deliveries.push_back({j, inst.bcastAt + 1});
    }
    switch (flaw_) {
      case Flaw::kLateAck:
        plan.ackAt = inst.bcastAt + p.fack + 1;
        break;
      case Flaw::kMissGNeighbor:
        plan.deliveries.pop_back();
        break;
      case Flaw::kDuplicateTarget:
        plan.deliveries.push_back(plan.deliveries.front());
        break;
      case Flaw::kOutsideGp: {
        // Line 0-1-2-3: node 0 broadcasting to node 3 is outside G'.
        plan.deliveries.push_back({3, inst.bcastAt + 1});
        break;
      }
      case Flaw::kDeliveryAfterAck:
        plan.deliveries.front().at = plan.ackAt + 1;
        break;
    }
    return plan;
  }

 private:
  Flaw flaw_;
};

class SendOnce : public Process {
 public:
  void onWake(Context& ctx) override {
    if (ctx.id() != 0) return;
    Packet p;
    ctx.bcast(std::move(p));
  }
};

TEST(MacEngine, RejectsIllegalPlans) {
  const auto topo = gen::identityDual(gen::line(4));
  using Flaw = BrokenScheduler::Flaw;
  for (Flaw flaw : {Flaw::kLateAck, Flaw::kMissGNeighbor,
                    Flaw::kDuplicateTarget, Flaw::kOutsideGp,
                    Flaw::kDeliveryAfterAck}) {
    MacEngine engine(topo, stdParams(),
                     std::make_unique<BrokenScheduler>(flaw),
                     [](NodeId) { return std::make_unique<SendOnce>(); }, 1);
    EXPECT_THROW(engine.run(), Error) << "flaw " << static_cast<int>(flaw);
  }
}

// --- delivery & ack ordering -------------------------------------------------

TEST(MacEngine, AckArrivesAfterAllGNeighborsReceive) {
  const auto topo = gen::identityDual(gen::star(6));
  MacEngine engine(topo, stdParams(), std::make_unique<SlowAckScheduler>(),
                   [](NodeId node) -> std::unique_ptr<Process> {
                     if (node == 0) return std::make_unique<ChainSender>(1);
                     return std::make_unique<Idle>();
                   },
                   1);
  engine.run();
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
  EXPECT_EQ(engine.stats().acks, 1u);
  EXPECT_EQ(engine.stats().rcvs, 5u);
  EXPECT_EQ(engine.instance(0).termAt, stdParams().fack);
}

TEST(MacEngine, ProgressGuardForcesDeliveryUnderAdversary) {
  // With G' = G the adversary has no junk: the guard must force the
  // real message within Fprog even though the plan says Fack.
  const auto topo = gen::identityDual(gen::line(2));
  MacEngine engine(topo, stdParams(4, 32),
                   std::make_unique<AdversarialScheduler>(),
                   [](NodeId node) -> std::unique_ptr<Process> {
                     if (node == 0) return std::make_unique<ChainSender>(1);
                     return std::make_unique<Idle>();
                   },
                   1);
  engine.run();
  EXPECT_EQ(engine.stats().forcedRcvs, 1u);
  const auto& inst = engine.instance(0);
  ASSERT_EQ(inst.deliveredTo.size(), 1u);
  // Forced at the progress deadline: bcast(0) + fprog.
  const auto& recs = engine.trace().records();
  for (const auto& rec : recs) {
    if (rec.kind == sim::TraceKind::kRcv) EXPECT_EQ(rec.t, 4);
  }
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
}

TEST(MacEngine, BackToBackBroadcastsRespectAckBound) {
  const auto topo = gen::identityDual(gen::line(2));
  MacEngine engine(topo, stdParams(2, 16), std::make_unique<SlowAckScheduler>(),
                   [](NodeId node) -> std::unique_ptr<Process> {
                     if (node == 0) return std::make_unique<ChainSender>(5);
                     return std::make_unique<Idle>();
                   },
                   1);
  engine.run();
  EXPECT_EQ(engine.stats().bcasts, 5u);
  EXPECT_EQ(engine.now(), 5 * 16);
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
}

// --- enhanced model -----------------------------------------------------------

/// Broadcasts every `period` ticks and aborts at the next boundary if
/// the ack has not arrived (the FMMB round pattern).
class RoundSender : public Process {
 public:
  RoundSender(Time period, int rounds) : period_(period), rounds_(rounds) {}
  void onWake(Context& ctx) override {
    act(ctx, 0);
    ctx.setTimerAt(period_);
  }
  void onTimer(Context& ctx, TimerId) override {
    if (ctx.busy()) ctx.abortBcast();
    ++round_;
    if (round_ >= rounds_) return;
    act(ctx, round_);
    ctx.setTimerAt((round_ + 1) * period_);
  }

 private:
  void act(Context& ctx, int round) {
    if (ctx.id() != 0) return;
    Packet p;
    p.tag = round;
    ctx.bcast(std::move(p));
  }
  Time period_;
  int rounds_;
  int round_ = 0;
};

TEST(MacEngine, EnhancedRoundsAbortAndStayWellFormed) {
  const auto topo = gen::identityDual(gen::line(3));
  const auto params = enhParams(4, 64);
  const Time period = params.fprog + 1;
  MacEngine engine(topo, params, std::make_unique<AdversarialScheduler>(),
                   [&](NodeId) {
                     return std::make_unique<RoundSender>(period, 6);
                   },
                   1);
  engine.run();
  EXPECT_EQ(engine.stats().bcasts, 6u);
  EXPECT_EQ(engine.stats().aborts, 6u);  // adversary acks at Fack > round
  // Node 1 (G-neighbor of the sender) received something every round.
  EXPECT_GE(engine.stats().rcvs, 6u);
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
}

TEST(MacEngine, AbortCancelsLateDeliveries) {
  const auto topo = gen::identityDual(gen::line(2));
  class AbortEarly : public Process {
   public:
    void onWake(Context& ctx) override {
      if (ctx.id() != 0) return;
      Packet p;
      ctx.bcast(std::move(p));
      ctx.setTimerAfter(2);
    }
    void onTimer(Context& ctx, TimerId) override {
      if (ctx.busy()) ctx.abortBcast();
    }
  };
  // SlowAck plans the delivery at fprog = 4 > abort time 2.
  MacEngine engine(topo, enhParams(4, 32), std::make_unique<SlowAckScheduler>(),
                   [](NodeId) { return std::make_unique<AbortEarly>(); }, 1);
  engine.run();
  EXPECT_EQ(engine.stats().aborts, 1u);
  EXPECT_EQ(engine.stats().rcvs, 0u);
  EXPECT_EQ(engine.stats().acks, 0u);
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
}

TEST(MacEngine, TimersFireAndCancel) {
  const auto topo = gen::identityDual(gen::line(2));
  class TimerUser : public Process {
   public:
    void onWake(Context& ctx) override {
      if (ctx.id() != 0) return;
      keep_ = ctx.setTimerAfter(5);
      drop_ = ctx.setTimerAfter(7);
      EXPECT_TRUE(ctx.cancelTimer(drop_));
      EXPECT_FALSE(ctx.cancelTimer(drop_));
    }
    void onTimer(Context& ctx, TimerId id) override {
      EXPECT_EQ(id, keep_);
      EXPECT_EQ(ctx.now(), 5);
      ++fires_;
    }
    int fires_ = 0;

   private:
    TimerId keep_ = kNoTimer;
    TimerId drop_ = kNoTimer;
  };
  TimerUser* p0 = nullptr;
  MacEngine engine(topo, enhParams(), std::make_unique<FastScheduler>(),
                   [&p0](NodeId node) {
                     auto p = std::make_unique<TimerUser>();
                     if (node == 0) p0 = p.get();
                     return p;
                   },
                   1);
  engine.run();
  ASSERT_NE(p0, nullptr);
  EXPECT_EQ(p0->fires_, 1);
}

TEST(MacEngine, EnhancedContextExposesConstants) {
  const auto topo = gen::identityDual(gen::line(2));
  class Reader : public Process {
   public:
    void onWake(Context& ctx) override {
      EXPECT_EQ(ctx.fprog(), 4);
      EXPECT_EQ(ctx.fack(), 32);
      EXPECT_EQ(ctx.n(), 2);
      EXPECT_EQ(ctx.gNeighbors().size(), 1u);
      EXPECT_TRUE(ctx.isGNeighbor(1 - ctx.id()));
    }
  };
  MacEngine engine(topo, enhParams(4, 32), std::make_unique<FastScheduler>(),
                   [](NodeId) { return std::make_unique<Reader>(); }, 1);
  engine.run();
}

TEST(MacEngine, UnreliableDeliveryReachesGPrimeOnlyNeighbors) {
  Rng rng(3);
  const auto topo = gen::withArbitraryNoise(gen::line(4), 2, rng);
  MacEngine engine(topo, stdParams(), std::make_unique<FastScheduler>(),
                   [](NodeId node) -> std::unique_ptr<Process> {
                     if (node == 0) return std::make_unique<ChainSender>(1);
                     return std::make_unique<Idle>();
                   },
                   1);
  engine.run();
  const auto& inst = engine.instance(0);
  EXPECT_EQ(inst.deliveredTo.size(),
            topo.gPrime().neighbors(0).size());
}

// Regression: an instance whose link vanishes mid-flight must still
// ack on schedule.  The edge {0, 1} drops before the slow-ack
// scheduler's planned delivery, so the delivery is cancelled and the
// acknowledgment guarantee for node 1 is voided — but the ack event
// itself survives the boundary, the sender's automaton continues
// (here: bcasts its second packet), and the epoch-aware checker
// accepts the trace that a static checker would reject.
TEST(MacEngine, AckInFlightAcrossEpochBoundary) {
  const auto base = gen::identityDual(gen::line(2));
  graph::TopologyDynamics dynamics;
  dynamics.epochs.push_back(
      {2, {{graph::TopologyEvent::Kind::kEdgeDown, 0, 1, false}}});
  const graph::TopologyView view(base, dynamics);

  // slow-ack: delivery at bcast+fprog (4), ack at bcast+fack (32);
  // the boundary at t=2 lands squarely between bcast and both.
  MacEngine engine(view, stdParams(), std::make_unique<SlowAckScheduler>(),
                   [](NodeId node) -> std::unique_ptr<Process> {
                     if (node == 0) return std::make_unique<ChainSender>(2);
                     return std::make_unique<Idle>();
                   },
                   1);
  EXPECT_EQ(engine.run(), sim::RunStatus::kDrained);

  // Both bcasts acked; the first delivered to nobody (link gone before
  // its delivery), the second planned against the empty neighborhood.
  EXPECT_EQ(engine.stats().bcasts, 2u);
  EXPECT_EQ(engine.stats().acks, 2u);
  EXPECT_EQ(engine.stats().rcvs, 0u);
  EXPECT_EQ(engine.instance(0).termAt, 32);

  // The epoch transition is on the trace, and the epoch-aware checker
  // is green while the static base-topology checker demands the rcv
  // node 1 never got.
  bool sawEpoch = false;
  for (const auto& record : engine.trace().records()) {
    sawEpoch = sawEpoch || record.kind == sim::TraceKind::kEpoch;
  }
  EXPECT_TRUE(sawEpoch);
  EXPECT_TRUE(checkTrace(view, engine.params(), engine.trace()).ok);
  EXPECT_FALSE(checkTrace(base, engine.params(), engine.trace()).ok);
}

}  // namespace
}  // namespace ammb::mac
