// Tests for the common substrate: RNG streams and contract macros.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace ammb {
namespace {

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  EXPECT_EQ(rng.uniformInt(5, 5), 5);
  EXPECT_THROW(rng.uniformInt(3, 2), Error);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(4);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, RandomBitsWidth) {
  Rng rng(5);
  for (int bits = 1; bits <= 63; ++bits) {
    const auto v = rng.randomBits(bits);
    EXPECT_LT(v, std::uint64_t{1} << bits);
  }
  (void)rng.randomBits(64);  // full width is legal
  EXPECT_THROW(rng.randomBits(0), Error);
  EXPECT_THROW(rng.randomBits(65), Error);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
  }
}

TEST(SeedSequence, ChildStreamsAreDistinct) {
  const SeedSequence seeds(7);
  std::set<std::uint64_t> unique;
  for (std::uint64_t stream = 1; stream <= 4; ++stream) {
    for (std::uint64_t index = 0; index < 50; ++index) {
      unique.insert(seeds.childSeed(stream, index));
    }
  }
  EXPECT_EQ(unique.size(), 200u);  // no collisions
}

TEST(SeedSequence, DeterministicAcrossInstances) {
  const SeedSequence a(99);
  const SeedSequence b(99);
  EXPECT_EQ(a.childSeed(rngstream::kNode, 3),
            b.childSeed(rngstream::kNode, 3));
  const SeedSequence c(100);
  EXPECT_NE(a.childSeed(rngstream::kNode, 3),
            c.childSeed(rngstream::kNode, 3));
}

TEST(SeedSequence, NeverReturnsZero) {
  const SeedSequence seeds(0);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_NE(seeds.childSeed(1, i), 0u);
  }
}

TEST(Error, RequireCarriesMessageAndLocation) {
  try {
    AMMB_REQUIRE(false, "the user-facing explanation");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the user-facing explanation"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Error, AssertMentionsBug) {
  try {
    AMMB_ASSERT(1 == 2);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bug"), std::string::npos);
  }
}

}  // namespace
}  // namespace ammb
