// Focused tests for the progress guard: the engine component that
// keeps adversarial schedulers honest.  Each scenario is driven by a
// purpose-built scheduler and verified both through engine state and
// the offline checker.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mac/engine.h"
#include "mac/schedulers.h"
#include "mac/trace_checker.h"
#include "test_util.h"

namespace ammb::mac {
namespace {

namespace gen = graph::gen;
using testutil::stdParams;

class SendN : public Process {
 public:
  explicit SendN(int count, NodeId who = 0) : remaining_(count), who_(who) {}
  void onWake(Context& ctx) override {
    if (ctx.id() == who_) next(ctx);
  }
  void onAck(Context& ctx, const Packet&) override { next(ctx); }

 private:
  void next(Context& ctx) {
    if (remaining_-- <= 0) return;
    Packet p;
    p.tag = remaining_;
    ctx.bcast(std::move(p));
  }
  int remaining_;
  NodeId who_;
};

TEST(ProgressGuard, ForcesExactlyOneDeliveryPerInstanceLifetime) {
  // A 2-node line under the adversary: the guard must force the
  // delivery at fprog, and the single rcv covers the rest of the
  // instance's lifetime (no further forcing).
  const auto topo = gen::identityDual(gen::line(2));
  MacEngine engine(topo, stdParams(4, 32),
                   std::make_unique<AdversarialScheduler>(),
                   [](NodeId) -> std::unique_ptr<Process> {
                     return std::make_unique<SendN>(3);
                   },
                   1);
  engine.run();
  EXPECT_EQ(engine.stats().bcasts, 3u);
  // One forced delivery per broadcast: 3 total, each at bcast + fprog.
  EXPECT_EQ(engine.stats().forcedRcvs, 3u);
  std::vector<Time> rcvTimes;
  for (const auto& rec : engine.trace().records()) {
    if (rec.kind == sim::TraceKind::kRcv) rcvTimes.push_back(rec.t);
  }
  EXPECT_EQ(rcvTimes, (std::vector<Time>{4, 36, 68}));
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
}

TEST(ProgressGuard, JunkCoverageSuppressesForcedRealDeliveries) {
  // Node 1 sits between broadcaster 0 (G-neighbor) and junk source 2
  // (G'-only neighbor).  When both broadcast, the adversary covers
  // node 1's obligations with junk from 2 and withholds the real
  // message until the ack.
  graph::Graph g(3);
  g.addEdge(0, 1);
  g.finalize();
  graph::Graph gp(3);
  gp.addEdge(0, 1);
  gp.addEdge(1, 2);
  gp.finalize();
  const graph::DualGraph topo(std::move(g), std::move(gp));

  MacEngine engine(topo, stdParams(4, 32),
                   std::make_unique<AdversarialScheduler>(),
                   [](NodeId node) -> std::unique_ptr<Process> {
                     if (node == 0) return std::make_unique<SendN>(1, 0);
                     if (node == 2) return std::make_unique<SendN>(1, 2);
                     return std::make_unique<SendN>(0, 1);
                   },
                   1);
  engine.run();
  // Find when node 1 received the real message (instance from 0).
  Time realAt = -1;
  Time junkAt = -1;
  for (const auto& rec : engine.trace().records()) {
    if (rec.kind != sim::TraceKind::kRcv || rec.node != 1) continue;
    const auto& inst = engine.instance(rec.instance);
    if (inst.sender == 0) realAt = rec.t;
    if (inst.sender == 2) junkAt = rec.t;
  }
  // The junk was forced at the progress deadline; the real message
  // only arrived with the ack at fack.
  EXPECT_EQ(junkAt, 4);
  EXPECT_EQ(realAt, 32);
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
}

TEST(ProgressGuard, CoverageExpiresWhenJunkInstanceTerminates) {
  // Same topology, but the junk source finishes fast (FastScheduler
  // semantics simulated by a custom plan is overkill — instead make
  // node 2 broadcast under the adversary too; its instance lives the
  // full fack, then terminates; node 0 keeps broadcasting, so after
  // the junk dies the guard must force again).
  graph::Graph g(3);
  g.addEdge(0, 1);
  g.finalize();
  graph::Graph gp(3);
  gp.addEdge(0, 1);
  gp.addEdge(1, 2);
  gp.finalize();
  const graph::DualGraph topo(std::move(g), std::move(gp));

  MacEngine engine(topo, stdParams(4, 32),
                   std::make_unique<AdversarialScheduler>(),
                   [](NodeId node) -> std::unique_ptr<Process> {
                     if (node == 0) return std::make_unique<SendN>(4, 0);
                     if (node == 2) return std::make_unique<SendN>(1, 2);
                     return std::make_unique<SendN>(0, 1);
                   },
                   1);
  engine.run();
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
  // Node 1 must have received >= 4 messages in total: the junk one,
  // plus coverage for the later broadcasts of node 0 after the junk
  // instance terminated.
  std::size_t rcvsAt1 = 0;
  for (const auto& rec : engine.trace().records()) {
    if (rec.kind == sim::TraceKind::kRcv && rec.node == 1) ++rcvsAt1;
  }
  EXPECT_GE(rcvsAt1, 4u);
}

TEST(ProgressGuard, NoObligationWithoutGNeighborBroadcast) {
  // Only a G'-only neighbor broadcasts: the model owes the receiver
  // nothing, and the adversary delivers nothing before the ack.
  graph::Graph g(3);
  g.addEdge(0, 1);
  g.finalize();
  graph::Graph gp(3);
  gp.addEdge(0, 1);
  gp.addEdge(1, 2);
  gp.finalize();
  const graph::DualGraph topo(std::move(g), std::move(gp));

  MacEngine engine(topo, stdParams(4, 32),
                   std::make_unique<AdversarialScheduler>(),
                   [](NodeId node) -> std::unique_ptr<Process> {
                     if (node == 2) return std::make_unique<SendN>(1, 2);
                     return std::make_unique<SendN>(0, node);
                   },
                   1);
  engine.run();
  EXPECT_EQ(engine.stats().forcedRcvs, 0u);
  // Node 2 has no G-neighbors at all, so its instance acks with no
  // deliveries — and that execution is still model-compliant.
  EXPECT_EQ(engine.instance(0).deliveredTo.size(), 0u);
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
}

TEST(ProgressGuard, ZeroDurationInstancesCreateNoObligation) {
  // Instant broadcasts (plan ack at the bcast tick) never open a
  // window longer than fprog.
  class InstantScheduler : public Scheduler {
   public:
    DeliveryPlan planBcast(const Instance& inst) override {
      DeliveryPlan plan;
      plan.ackAt = inst.bcastAt;
      for (NodeId j : engine_->topology().g().neighbors(inst.sender)) {
        plan.deliveries.push_back({j, inst.bcastAt});
      }
      return plan;
    }
  };
  const auto topo = gen::identityDual(gen::line(3));
  MacEngine engine(topo, stdParams(4, 32),
                   std::make_unique<InstantScheduler>(),
                   [](NodeId node) -> std::unique_ptr<Process> {
                     return std::make_unique<SendN>(node == 0 ? 5 : 0, node);
                   },
                   1);
  engine.run();
  EXPECT_EQ(engine.stats().forcedRcvs, 0u);
  EXPECT_EQ(engine.now(), 0);  // everything happened at t = 0
  const auto check = checkTrace(topo, engine.params(), engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
}

TEST(ProgressGuard, AbortCancelsTheObligation) {
  // Enhanced model: a broadcast aborted before fprog elapses leaves
  // nothing to force.
  class AbortQuick : public Process {
   public:
    void onWake(Context& ctx) override {
      if (ctx.id() != 0) return;
      Packet p;
      ctx.bcast(std::move(p));
      ctx.setTimerAfter(2);  // abort before the fprog=4 deadline
    }
    void onTimer(Context& ctx, TimerId) override {
      if (ctx.busy()) ctx.abortBcast();
    }
  };
  auto params = stdParams(4, 32);
  params.variant = ModelVariant::kEnhanced;
  const auto topo = gen::identityDual(gen::line(2));
  MacEngine engine(topo, params, std::make_unique<AdversarialScheduler>(),
                   [](NodeId) { return std::make_unique<AbortQuick>(); }, 1);
  engine.run();
  EXPECT_EQ(engine.stats().forcedRcvs, 0u);
  EXPECT_EQ(engine.stats().rcvs, 0u);
  const auto check = checkTrace(topo, params, engine.trace());
  EXPECT_TRUE(check.ok) << check.summary();
}

}  // namespace
}  // namespace ammb::mac
