// The trace pipeline's contracts, bottom to top: the TraceMode label
// round-trips; the spool sink's fixed-width encoding replays
// byte-identically to the in-memory vector (tolerating a torn tail,
// rejecting mid-record corruption); the Trace facade's tee feeds live
// consumers the exact committed sequence; the streaming oracles are
// byte-identical to their whole-trace offline references; and whole
// executions — every committed golden case — are bit-identical across
// trace modes at 1, 4 and 8 parallel workers, honest and mutated
// alike.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "check/golden.h"
#include "check/mutation.h"
#include "check/oracles.h"
#include "core/experiment.h"
#include "graph/generators.h"
#include "mac/trace_checker.h"
#include "phys/measurement.h"
#include "runner/sweep_runner.h"
#include "sim/trace_sink.h"
#include "test_util.h"

namespace ammb {
namespace {

namespace gen = graph::gen;
using check::ExecutionOutcome;
using check::FuzzCase;
using check::GoldenCase;
using check::SchedulerMutation;
using sim::MemTraceSink;
using sim::SpoolTraceSink;
using sim::Trace;
using sim::TraceKind;
using sim::TraceMode;
using sim::TraceRecord;

// --- TraceMode ---------------------------------------------------------------

TEST(TracePipelineMode, LabelsAndRoundTrips) {
  EXPECT_EQ(TraceMode::mem().label(), "mem");
  EXPECT_EQ(TraceMode::spool().label(), "spool");
  EXPECT_EQ(TraceMode::spool(4096).label(), "spool:4096");
  // The default buffer size is elided: "spool:16384" and "spool" are
  // the same mode with the same canonical label.
  EXPECT_EQ(TraceMode::spool(TraceMode::kDefaultSpoolBuf).label(), "spool");
  EXPECT_EQ(TraceMode::fromLabel("spool:16384").label(), "spool");

  for (const std::string label : {"mem", "spool", "spool:64", "spool:4096"}) {
    EXPECT_EQ(TraceMode::fromLabel(label).label(), label) << label;
  }
  EXPECT_EQ(TraceMode::fromLabel("spool:64"), TraceMode::spool(64));
  EXPECT_EQ(TraceMode::fromLabel("mem"), TraceMode::mem());
  EXPECT_NE(TraceMode::mem(), TraceMode::spool());
  EXPECT_NE(TraceMode::spool(64), TraceMode::spool(65));
  // A zero buffer clamps to one record rather than dividing by zero.
  EXPECT_EQ(TraceMode::spool(0).bufRecords, 1u);

  EXPECT_THROW(TraceMode::fromLabel(""), Error);
  EXPECT_THROW(TraceMode::fromLabel("Mem"), Error);
  EXPECT_THROW(TraceMode::fromLabel("disk"), Error);
  EXPECT_THROW(TraceMode::fromLabel("spool:"), Error);
  EXPECT_THROW(TraceMode::fromLabel("spool:0"), Error);
  EXPECT_THROW(TraceMode::fromLabel("spool:-4"), Error);
  EXPECT_THROW(TraceMode::fromLabel("spool:12x"), Error);
  EXPECT_THROW(TraceMode::fromLabel("spool:9999999999"), Error);
}

// --- SpoolTraceSink ----------------------------------------------------------

std::vector<TraceRecord> sampleRecords(std::size_t count) {
  std::vector<TraceRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.t = static_cast<Time>(7 * i + 1);
    r.kind = static_cast<TraceKind>(i % 8);
    r.node = static_cast<NodeId>(i % 5);
    r.instance = (i % 3 == 0) ? kNoInstance : static_cast<InstanceId>(i * 11);
    r.msg = (i % 4 == 0) ? kNoMsg : static_cast<MsgId>(i % 4);
    records.push_back(r);
  }
  return records;
}

std::vector<TraceRecord> replayed(const sim::TraceSink& sink) {
  std::vector<TraceRecord> out;
  sink.replay([&](const TraceRecord& r) { out.push_back(r); });
  return out;
}

void expectSameRecords(const std::vector<TraceRecord>& a,
                       const std::vector<TraceRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].node, b[i].node) << i;
    EXPECT_EQ(a[i].instance, b[i].instance) << i;
    EXPECT_EQ(a[i].msg, b[i].msg) << i;
  }
}

TEST(TracePipelineSpool, EncodeDecodeRoundTripsEveryField) {
  for (const TraceRecord& r : sampleRecords(16)) {
    unsigned char encoded[SpoolTraceSink::kRecordBytes];
    SpoolTraceSink::encodeRecord(r, encoded);
    const TraceRecord back = SpoolTraceSink::decodeRecord(encoded);
    EXPECT_EQ(back.t, r.t);
    EXPECT_EQ(back.kind, r.kind);
    EXPECT_EQ(back.node, r.node);
    EXPECT_EQ(back.instance, r.instance);
    EXPECT_EQ(back.msg, r.msg);
  }
  // Every byte past the last valid TraceKind is corruption.
  unsigned char encoded[SpoolTraceSink::kRecordBytes];
  SpoolTraceSink::encodeRecord(TraceRecord{}, encoded);
  encoded[24] = 0xff;
  EXPECT_THROW(SpoolTraceSink::decodeRecord(encoded), Error);
  encoded[24] =
      static_cast<unsigned char>(static_cast<int>(TraceKind::kEpoch) + 1);
  EXPECT_THROW(SpoolTraceSink::decodeRecord(encoded), Error);
}

TEST(TracePipelineSpool, ReplayMatchesMemAcrossBufferBoundaries) {
  const std::vector<TraceRecord> records = sampleRecords(23);
  // Buffer sizes straddling the record count: mid-buffer pending tail,
  // exact flush boundary, and everything-buffered.
  for (const std::size_t bufRecords : {1ul, 4ul, 23ul, 64ul}) {
    MemTraceSink mem;
    SpoolTraceSink spool(bufRecords);
    for (const TraceRecord& r : records) {
      mem.append(r);
      spool.append(r);
    }
    EXPECT_EQ(spool.size(), mem.size()) << bufRecords;
    EXPECT_EQ(spool.lastTime(), mem.lastTime()) << bufRecords;
    EXPECT_EQ(spool.memRecords(), nullptr);
    expectSameRecords(replayed(spool), replayed(mem));
    // Replay flushes but must not consume: a second replay and further
    // appends still see everything.
    spool.append(records.front());
    EXPECT_EQ(replayed(spool).size(), records.size() + 1) << bufRecords;
  }
}

TEST(TracePipelineSpool, TornTailRecordIsDroppedOnReplay) {
  const std::string path = testing::TempDir() + "ammb_torn_tail.spool";
  std::remove(path.c_str());
  const std::vector<TraceRecord> records = sampleRecords(9);
  {
    SpoolTraceSink spool(path, /*bufRecords=*/4);
    for (const TraceRecord& r : records) spool.append(r);
  }  // destructor flushes all 9 records to the file

  // Tear the final record mid-write: keep 8 complete records plus a
  // 10-byte fragment, the on-disk state of an interrupted writer.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long bytes = std::ftell(f);
    ASSERT_EQ(bytes, static_cast<long>(9 * SpoolTraceSink::kRecordBytes));
    std::fclose(f);
    ASSERT_EQ(
        truncate(path.c_str(),
                 static_cast<off_t>(8 * SpoolTraceSink::kRecordBytes + 10)),
        0);
  }

  SpoolTraceSink reattached(path, /*bufRecords=*/4);
  EXPECT_EQ(reattached.size(), 8u);  // fragment excluded from the count
  const std::vector<TraceRecord> got = replayed(reattached);
  expectSameRecords(
      got, std::vector<TraceRecord>(records.begin(), records.begin() + 8));
  std::remove(path.c_str());
}

TEST(TracePipelineSpool, MidRecordCorruptionThrowsOnReplay) {
  const std::string path = testing::TempDir() + "ammb_corrupt.spool";
  std::remove(path.c_str());
  {
    SpoolTraceSink spool(path, /*bufRecords=*/4);
    for (const TraceRecord& r : sampleRecords(6)) spool.append(r);
  }
  // Smash the kind byte of a *complete* interior record: unlike a torn
  // tail this is data loss, and replay must fail loudly.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 2 * SpoolTraceSink::kRecordBytes + 24, SEEK_SET),
              0);
    const unsigned char bad = 0xff;
    ASSERT_EQ(std::fwrite(&bad, 1, 1, f), 1u);
    std::fclose(f);
  }
  SpoolTraceSink reattached(path, /*bufRecords=*/4);
  EXPECT_THROW(replayed(reattached), Error);
  std::remove(path.c_str());
}

// --- Trace facade ------------------------------------------------------------

TEST(TracePipelineFacade, SpoolTraceSupportsEverythingButRandomAccess) {
  const std::vector<TraceRecord> records = sampleRecords(40);

  Trace mem(true, TraceMode::mem());
  Trace spool(true, TraceMode::spool(8));
  for (const TraceRecord& r : records) {
    mem.add(r);
    spool.add(r);
  }

  EXPECT_EQ(spool.mode(), TraceMode::spool(8));
  EXPECT_EQ(spool.size(), mem.size());
  EXPECT_EQ(spool.lastTime(), mem.lastTime());
  EXPECT_EQ(mem.records().size(), records.size());
  EXPECT_THROW(spool.records(), Error);  // random access needs the mem sink

  std::vector<TraceRecord> viaForEach;
  spool.forEach([&](const TraceRecord& r) { viaForEach.push_back(r); });
  expectSameRecords(viaForEach, mem.records());
  EXPECT_EQ(check::traceHash(spool), check::traceHash(mem));
  EXPECT_EQ(check::canonicalTrace(spool), check::canonicalTrace(mem));
}

TEST(TracePipelineFacade, AttachedConsumersSeeTheCommittedSequence) {
  // The tee must feed consumers the exact committed order for both
  // sinks — including records added before the consumer attached (not
  // replayed; the hasher only sees what it witnessed).
  for (const TraceMode mode : {TraceMode::mem(), TraceMode::spool(8)}) {
    Trace trace(true, mode);
    check::TraceHasher hasher;
    trace.attachConsumer(&hasher);
    for (const TraceRecord& r : sampleRecords(40)) trace.add(r);
    EXPECT_EQ(hasher.hash(), check::traceHash(trace)) << mode.label();
    EXPECT_EQ(trace.size(), 40u) << mode.label();
  }
  // A disabled trace ignores consumers and keeps nothing.
  Trace disabled(false, TraceMode::spool(8));
  check::TraceHasher hasher;
  disabled.attachConsumer(&hasher);
  disabled.add(TraceRecord{});
  EXPECT_EQ(disabled.size(), 0u);
  EXPECT_EQ(hasher.hash(), check::traceHash(disabled));  // both empty
}

// --- streaming oracles vs their offline references ---------------------------

// One adversarially scheduled grey-zone run with the trace in memory:
// every streaming checker must be byte-identical to its whole-trace
// offline reference, and replaying the same records through a spool
// must change nothing.
TEST(TracePipelineParity, StreamingOraclesMatchOfflineReferences) {
  Rng rng(7);
  const graph::DualGraph base = gen::greyZoneField(24, 5.0, 1.5, 0.4, rng);
  const core::MmbWorkload workload = core::workloadRoundRobin(4, base.n());
  core::RunConfig config;
  config.mac = testutil::stdParams(4, 32);
  config.scheduler = core::SchedulerKind::kAdversarialStuffing;
  config.seed = 11;
  config.limits.maxTime = 200'000;
  core::Experiment experiment(base, core::bmmbProtocol(), workload, config);
  const core::RunResult result = experiment.run();
  ASSERT_TRUE(result.solved);
  const sim::Trace& trace = experiment.trace();

  // A spool copy of the identical record sequence.
  sim::Trace spoolCopy(true, TraceMode::spool(64));
  trace.forEach([&](const TraceRecord& r) { spoolCopy.add(r); });
  ASSERT_EQ(spoolCopy.size(), trace.size());

  // MAC axioms: streaming == offline, on both storage backends.
  const mac::CheckResult offline = mac::checkTraceOffline(
      experiment.view(), config.mac, trace, result.endTime);
  for (const sim::Trace* t :
       std::initializer_list<const sim::Trace*>{&trace, &spoolCopy}) {
    const mac::CheckResult streaming =
        mac::checkTrace(experiment.view(), config.mac, *t, result.endTime);
    EXPECT_EQ(streaming.ok, offline.ok);
    EXPECT_EQ(streaming.violations, offline.violations);
  }

  // Full oracle stack: streaming == offline, on both storage backends.
  const check::OracleReport offlineReport =
      check::checkExecutionOffline(experiment.view(), core::bmmbProtocol(),
                                   config.mac, workload, trace, result);
  for (const sim::Trace* t :
       std::initializer_list<const sim::Trace*>{&trace, &spoolCopy}) {
    const check::OracleReport streaming =
        check::checkExecution(experiment.view(), core::bmmbProtocol(),
                              config.mac, workload, *t, result);
    EXPECT_EQ(streaming.ok, offlineReport.ok);
    EXPECT_EQ(streaming.violations, offlineReport.violations);
    EXPECT_EQ(streaming.macRecords.size(), offlineReport.macRecords.size());
  }
  EXPECT_TRUE(offlineReport.ok) << offlineReport.summary();

  // Realized-bounds measurement: the histogram accumulator equals the
  // sorted-vector rule regardless of which sink replays the records.
  const phys::RealizedBounds fromMem =
      phys::measureRealized(experiment.view(), config.mac, trace,
                            result.endTime);
  const phys::RealizedBounds fromSpool =
      phys::measureRealized(experiment.view(), config.mac, spoolCopy,
                            result.endTime);
  ASSERT_TRUE(fromMem.measured());
  EXPECT_TRUE(fromMem == fromSpool);
}

// --- whole-execution bit-identity across trace modes -------------------------

void expectIdentical(const ExecutionOutcome& mem,
                     const ExecutionOutcome& spool, const std::string& what) {
  ASSERT_TRUE(spool.error.empty()) << what << ": " << spool.error;
  EXPECT_EQ(spool.canonicalTrace, mem.canonicalTrace) << what;
  EXPECT_EQ(spool.traceHash, mem.traceHash) << what;
  EXPECT_EQ(spool.report.ok, mem.report.ok) << what;
  EXPECT_EQ(spool.report.violations, mem.report.violations) << what;
  EXPECT_EQ(check::canonicalRunResult(spool.result),
            check::canonicalRunResult(mem.result))
      << what;
}

// The acceptance bar of the storage seam: every committed golden case
// replays bit-identically from a disk spool — under the serial kernel
// and at 1, 4 and 8 parallel workers, so the spool's write buffer and
// the kernel's commit sequencing are exercised together.  (Equality
// against the mem outcome is equality against the .golden snapshots,
// which the golden regression test pins.)
TEST(TracePipelineParity, GoldenSuiteSpooledAtSerialOneFourEightWorkers) {
  for (const GoldenCase& gc : check::goldenCaseSuite()) {
    const ExecutionOutcome mem = check::runCase(
        gc.fuzzCase, SchedulerMutation::kNone, /*keepCanonicalTrace=*/true);
    ASSERT_TRUE(mem.error.empty()) << gc.name << ": " << mem.error;
    ASSERT_FALSE(mem.canonicalTrace.empty()) << gc.name;

    FuzzCase spooled = gc.fuzzCase;
    spooled.traceMode = TraceMode::spool(4096);
    const ExecutionOutcome serial = check::runCase(
        spooled, SchedulerMutation::kNone, /*keepCanonicalTrace=*/true);
    expectIdentical(mem, serial, gc.name + " @ spool/serial");
    EXPECT_TRUE(serial.report.ok) << gc.name << ": " << serial.report.summary();

    for (const int workers : {1, 4, 8}) {
      FuzzCase c = spooled;
      c.kernel = sim::KernelSpec::parallelWith(workers);
      const ExecutionOutcome parallel = check::runCase(
          c, SchedulerMutation::kNone, /*keepCanonicalTrace=*/true);
      expectIdentical(mem, parallel,
                      gc.name + " @ spool/" + c.kernel.label());
    }
  }
}

// Negative-path parity: a broken scheduler must produce the *same*
// violations whether the evidence was held in memory or streamed
// through the spool — storage must never launder a mutation.
TEST(TracePipelineParity, MutationVerdictsMatchAcrossTraceModes) {
  FuzzCase c;
  c.protocol = core::ProtocolKind::kBmmb;
  c.topology = check::TopologyFamily::kGreyZoneField;
  c.n = 12;
  c.k = 3;
  c.workload = check::WorkloadShape::kRoundRobin;
  c.scheduler = core::SchedulerKind::kRandom;
  c.mac = testutil::stdParams(4, 32);
  c.maxTime = 100'000;
  c.seed = 17;

  for (const SchedulerMutation mutation :
       {SchedulerMutation::kLateAck, SchedulerMutation::kOffGPrime}) {
    const ExecutionOutcome mem =
        check::runCase(c, mutation, /*keepCanonicalTrace=*/true);
    ASSERT_TRUE(mem.error.empty()) << mem.error;
    EXPECT_FALSE(mem.report.ok);  // the mutation must be caught at all

    FuzzCase spooled = c;
    spooled.traceMode = TraceMode::spool(64);
    const ExecutionOutcome spool =
        check::runCase(spooled, mutation, /*keepCanonicalTrace=*/true);
    expectIdentical(mem, spool, "mutated @ spool");
  }
}

// --- sweep-layer provenance --------------------------------------------------

TEST(TracePipelineSweep, RecordsCarryTraceModeAndMatchMemHashes) {
  runner::SweepSpec spec;
  spec.name = "trace-provenance";
  spec.topologies = {runner::greyZoneFieldTopology(16, 5.0, 1.5, 0.4)};
  spec.schedulers = {core::SchedulerKind::kRandom};
  spec.ks = {3};
  spec.macs = {{"f4a32", testutil::stdParams(4, 32)}};
  spec.workloads = {runner::roundRobinWorkload()};
  spec.seedBegin = 1;
  spec.seedEnd = 3;
  spec.check = runner::CheckMode::kFull;
  const std::vector<runner::RunPoint> points = runner::enumerateRuns(spec);
  ASSERT_FALSE(points.empty());

  runner::SweepSpec spooledSpec = spec;
  spooledSpec.traceMode = TraceMode::spool(256);
  for (const runner::RunPoint& point : points) {
    const runner::RunRecord mem = runner::executeRun(spec, point);
    const runner::RunRecord spooled = runner::executeRun(spooledSpec, point);
    ASSERT_TRUE(mem.error.empty()) << mem.error;
    ASSERT_TRUE(spooled.error.empty()) << spooled.error;
    EXPECT_EQ(mem.traceMode, "mem");
    EXPECT_EQ(spooled.traceMode, "spool:256");
    // Same execution, different storage: the label is provenance,
    // never an input to results.
    EXPECT_EQ(spooled.traceHash, mem.traceHash) << "run " << point.runIndex;
    EXPECT_TRUE(spooled.checked);
    EXPECT_TRUE(spooled.checkViolations.empty());
  }
}

}  // namespace
}  // namespace ammb
