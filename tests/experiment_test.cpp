// Tests for the experiment harness: bound formulas, scheduler factory,
// the ProtocolSpec tagged union, run control, and the online-arrival
// MMB generalization end to end.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "graph/generators.h"
#include "mac/trace_checker.h"
#include "test_util.h"

namespace ammb {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;
using core::SchedulerKind;
namespace gen = graph::gen;
using testutil::enhParams;
using testutil::stdParams;

TEST(BoundFormulas, MatchTheoremExpressions) {
  mac::MacParams p;
  p.fprog = 3;
  p.fack = 50;
  // Theorem 3.16: (D + (r+1)k - 2) Fprog + r (k-1) Fack.
  EXPECT_EQ(core::bmmbRRestrictedBound(10, 4, 2, p),
            (10 + 3 * 4 - 2) * 3 + 2 * 3 * 50);
  // r = 1, k = 1 degenerates to D * Fprog.
  EXPECT_EQ(core::bmmbRRestrictedBound(10, 1, 1, p), 10 * 3);
  // Theorem 3.1: (D + k) Fack.
  EXPECT_EQ(core::bmmbArbitraryBound(10, 4, p), 14 * 50);
  EXPECT_THROW(core::bmmbRRestrictedBound(-1, 1, 1, p), Error);
  EXPECT_THROW(core::bmmbArbitraryBound(1, 0, p), Error);
}

TEST(BoundFormulas, FmmbEnvelopeGrowsInEachParameter) {
  const auto p = enhParams(4, 64);
  const auto f = core::FmmbParams::make(64);
  const Time base = core::fmmbBoundEnvelope(10, 4, f, p);
  EXPECT_GT(core::fmmbBoundEnvelope(20, 4, f, p), base);
  EXPECT_GT(core::fmmbBoundEnvelope(10, 8, f, p), base);
}

TEST(SchedulerFactory, ProducesEveryKind) {
  for (SchedulerKind kind :
       {SchedulerKind::kFast, SchedulerKind::kRandom, SchedulerKind::kSlowAck,
        SchedulerKind::kAdversarial, SchedulerKind::kAdversarialStuffing}) {
    EXPECT_NE(core::makeScheduler(kind), nullptr);
    EXPECT_FALSE(core::toString(kind).empty());
  }
  EXPECT_NE(core::makeScheduler(SchedulerKind::kLowerBound, 8), nullptr);
}

TEST(ProtocolSpec, TaggedUnionCarriesTheRightKnobs) {
  const core::ProtocolSpec bmmb =
      core::bmmbProtocol(core::QueueDiscipline::kLifo);
  EXPECT_EQ(bmmb.kind(), ProtocolKind::kBmmb);
  EXPECT_EQ(bmmb.bmmb().discipline, core::QueueDiscipline::kLifo);
  EXPECT_THROW(bmmb.fmmb(), Error);

  const core::ProtocolSpec fmmb =
      core::fmmbProtocol(core::FmmbParams::make(32));
  EXPECT_EQ(fmmb.kind(), ProtocolKind::kFmmb);
  EXPECT_EQ(fmmb.fmmb().params.logn, 5);
  EXPECT_THROW(fmmb.bmmb(), Error);

  // Default-constructed: BMMB with the paper's FIFO discipline.
  const core::ProtocolSpec def;
  EXPECT_EQ(def.kind(), ProtocolKind::kBmmb);
  EXPECT_EQ(def.bmmb().discipline, core::QueueDiscipline::kFifo);

  EXPECT_EQ(core::toString(ProtocolKind::kBmmb), "bmmb");
  EXPECT_EQ(core::toString(ProtocolKind::kFmmb), "fmmb");
}

TEST(ProtocolSpec, ExperimentGuardsSuiteAccessors) {
  const auto topo = gen::identityDual(gen::line(4));
  RunConfig config;
  config.mac = stdParams(4, 32);
  Experiment experiment(topo, core::bmmbProtocol(),
                        core::workloadAllAtNode(1, 0), config);
  EXPECT_EQ(experiment.protocol(), ProtocolKind::kBmmb);
  EXPECT_NO_THROW(experiment.bmmbSuite());
  EXPECT_THROW(experiment.fmmbSuite(), Error);
}

TEST(RunControl, MaxTimeTruncatesUnsolvedRuns) {
  const auto topo = gen::identityDual(gen::line(40));
  RunConfig config;
  config.mac = stdParams(4, 64);
  config.scheduler = SchedulerKind::kSlowAck;
  config.limits.maxTime = 10;  // far too short
  const auto result = core::runExperiment(topo, core::bmmbProtocol(),
                                          core::workloadAllAtNode(3, 0),
                                          config);
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(result.solveTime, kTimeNever);
  EXPECT_EQ(result.status, sim::RunStatus::kTimeLimit);
}

TEST(RunControl, MacParamsAreValidated) {
  const auto topo = gen::identityDual(gen::line(4));
  RunConfig config;
  config.mac.fprog = 8;
  config.mac.fack = 4;  // fack < fprog: invalid
  EXPECT_THROW(core::runExperiment(topo, core::bmmbProtocol(),
                                   core::workloadAllAtNode(1, 0), config),
               Error);
}

TEST(RunControl, FmmbRequiresEnhancedModel) {
  const auto topo = gen::identityDual(gen::line(4));
  RunConfig config;
  config.mac = stdParams(4, 32);  // standard model: must reject
  EXPECT_THROW(core::runExperiment(
                   topo, core::fmmbProtocol(core::FmmbParams::make(topo.n())),
                   core::workloadAllAtNode(1, 0), config),
               Error);
}

TEST(OnlineArrivals, BmmbSolvesStaggeredWorkload) {
  const auto topo = gen::identityDual(gen::grid(5, 4));
  Rng rng(3);
  const auto workload = core::workloadOnline(6, topo.n(), /*interval=*/50,
                                             rng);
  RunConfig config;
  config.mac = stdParams(4, 32);
  config.scheduler = SchedulerKind::kRandom;
  Experiment experiment(topo, core::bmmbProtocol(), workload, config);
  const auto result = experiment.run();
  ASSERT_TRUE(result.solved);
  // The last message arrives at t=250; solving must come later.
  EXPECT_GE(result.solveTime, 250);
  const auto mac = mac::checkTrace(topo, config.mac,
                                   experiment.engine().trace());
  EXPECT_TRUE(mac.ok) << mac.summary();
  const auto mmb =
      core::checkMmbTrace(topo, workload, experiment.engine().trace());
  EXPECT_TRUE(mmb.ok);
}

TEST(OnlineArrivals, FmmbHandlesArrivalsAfterTheMisStage) {
  Rng topoRng(8);
  const auto topo = gen::greyZoneField(24, 7.0, 1.5, 0.4, topoRng);
  const auto params = core::FmmbParams::make(topo.n());
  RunConfig config;
  config.mac = enhParams(4, 64);
  config.scheduler = SchedulerKind::kRandom;
  // Two messages at t=0, one injected deep into the dissemination
  // stage (after the MIS fixed roles).
  core::MmbWorkload workload;
  workload.k = 3;
  const Time late =
      (params.misRounds() + 60) * (config.mac.fprog + 1);
  workload.arrivals = {{0, 0, 0}, {5, 1, 0}, {9, 2, late}};
  Experiment experiment(topo, core::fmmbProtocol(params), workload, config);
  const auto result = experiment.run();
  ASSERT_TRUE(result.solved);
  EXPECT_GE(result.solveTime, late);
  const auto mmb =
      core::checkMmbTrace(topo, workload, experiment.engine().trace());
  EXPECT_TRUE(mmb.ok);
}

TEST(OnlineArrivals, WorkloadBuilderSpacing) {
  Rng rng(1);
  const auto w = core::workloadOnline(5, 10, 7, rng);
  ASSERT_EQ(w.arrivals.size(), 5u);
  for (std::size_t i = 0; i < w.arrivals.size(); ++i) {
    EXPECT_EQ(w.arrivals[i].at, static_cast<Time>(7 * i));
  }
  EXPECT_THROW(core::workloadOnline(3, 10, -1, rng), Error);
}

TEST(Experiment, StatsAreConsistent) {
  const auto topo = gen::identityDual(gen::ring(8));
  RunConfig config;
  config.mac = stdParams(4, 32);
  config.scheduler = SchedulerKind::kFast;
  config.limits.stopOnSolve = false;
  Experiment experiment(topo, core::bmmbProtocol(),
                        core::workloadAllAtNode(2, 0), config);
  const auto result = experiment.run();
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.stats.bcasts, result.stats.acks);  // all terminated
  EXPECT_EQ(result.stats.aborts, 0u);
  EXPECT_EQ(result.stats.arrives, 2u);
  EXPECT_EQ(result.stats.delivers, 16u);  // 8 nodes x 2 messages
  // Every message arrived and completed; the metrics agree.
  EXPECT_EQ(result.messages.arrived, 2u);
  EXPECT_EQ(result.messages.completed, 2u);
  EXPECT_EQ(result.messages.maxLatency, result.solveTime);
}

TEST(Experiment, TracerCanBeDisabled) {
  const auto topo = gen::identityDual(gen::line(6));
  RunConfig config;
  config.mac = stdParams(4, 32);
  config.scheduler = SchedulerKind::kRandom;
  config.recordTrace = false;
  Experiment experiment(topo, core::bmmbProtocol(),
                        core::workloadAllAtNode(2, 0), config);
  ASSERT_TRUE(experiment.run().solved);
  EXPECT_EQ(experiment.engine().trace().size(), 0u);
  EXPECT_THROW(
      mac::checkTrace(topo, config.mac, experiment.engine().trace()), Error);
}

TEST(Experiment, SeedSweepIsPerSeedDeterministic) {
  const auto topo = gen::identityDual(gen::grid(4, 4));
  RunConfig config;
  config.mac = stdParams(4, 32);
  config.scheduler = SchedulerKind::kRandom;
  config.recordTrace = false;
  const core::ArrivalFactory factory = [&topo](std::uint64_t seed) {
    return std::make_unique<core::PoissonArrivalProcess>(4, topo.n(), 20.0,
                                                         seed);
  };
  const auto a = core::runSeedSweep(topo, core::bmmbProtocol(), factory,
                                    config, 1, 5);
  const auto b = core::runSeedSweep(topo, core::bmmbProtocol(), factory,
                                    config, 1, 5);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].solved);
    EXPECT_EQ(a[i].solveTime, b[i].solveTime);
    EXPECT_EQ(a[i].stats.rcvs, b[i].stats.rcvs);
    EXPECT_EQ(a[i].messages.p95Latency, b[i].messages.p95Latency);
  }
}

}  // namespace
}  // namespace ammb
