// FMMB parameter/variant coverage: strict paper phases, grey-zone
// constant sweep, parameter validation, and cross-mode equivalence.
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.h"
#include "graph/generators.h"
#include "test_util.h"

namespace ammb {
namespace {

using core::FmmbParams;
using core::RunConfig;
using core::SchedulerKind;
namespace gen = graph::gen;
using testutil::enhParams;

TEST(FmmbParams, FormulasMatchThePaper) {
  const auto p = FmmbParams::make(64, 2.0);
  EXPECT_EQ(p.logn, 6);
  EXPECT_EQ(p.electionRounds, 4 * 6);              // 4 log n (Section 4.2)
  EXPECT_EQ(p.announceRounds, 72);                 // ceil(3 c^2 log n)
  EXPECT_DOUBLE_EQ(p.pAnnounce, 1.0 / 8.0);        // 1 / (2 c^2)
  EXPECT_EQ(p.misRounds(), p.phases * (24 + 72));
  // Strict mode: Theta(c^2 log^2 n) phases.
  auto strict = FmmbParams::make(64, 2.0).strictPaperPhases();
  EXPECT_EQ(strict.phases, static_cast<int>(std::ceil(4.0 * 36)));
}

TEST(FmmbParams, RejectsOversizedNetworks) {
  // 4 log n must fit in a 64-bit election string: n <= 2^16.
  EXPECT_NO_THROW(FmmbParams::make(1 << 16));
  EXPECT_THROW(FmmbParams::make((1 << 16) + 1), Error);
  EXPECT_THROW(FmmbParams::make(0), Error);
  EXPECT_THROW(FmmbParams::make(8, 0.5), Error);
  EXPECT_THROW(FmmbParams::makeSequential(8, 0), Error);
}

TEST(FmmbParams, LognIsCeilLog2) {
  EXPECT_EQ(FmmbParams::make(1).logn, 1);
  EXPECT_EQ(FmmbParams::make(2).logn, 1);
  EXPECT_EQ(FmmbParams::make(3).logn, 2);
  EXPECT_EQ(FmmbParams::make(64).logn, 6);
  EXPECT_EQ(FmmbParams::make(65).logn, 7);
}

class FmmbCSweep : public ::testing::TestWithParam<double> {};

TEST_P(FmmbCSweep, SolvesAtLargerGreyZoneConstants) {
  const double c = GetParam();
  Rng rng(91);
  const auto topo = gen::greyZoneField(28, 7.0, c, 0.4, rng);
  RunConfig config;
  config.mac = enhParams(4, 64);
  config.scheduler = SchedulerKind::kRandom;
  const auto params = FmmbParams::make(topo.n(), c);
  const auto result =
      core::runExperiment(topo, core::fmmbProtocol(params),
                          core::workloadRoundRobin(3, topo.n()), config);
  EXPECT_TRUE(result.solved) << "c=" << c;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FmmbCSweep, ::testing::Values(1.5, 2.0, 3.0));

TEST(FmmbVariants, StrictPaperPhasesStillSolve) {
  Rng rng(17);
  const auto topo = gen::greyZoneField(16, 6.0, 1.5, 0.4, rng);
  auto params = FmmbParams::make(topo.n());
  params.strictPaperPhases();
  RunConfig config;
  config.mac = enhParams(2, 16);  // small constants keep the run short
  config.scheduler = SchedulerKind::kFast;
  const auto result =
      core::runExperiment(topo, core::fmmbProtocol(params),
                          core::workloadAllAtNode(2, 0), config);
  EXPECT_TRUE(result.solved);
}

TEST(FmmbVariants, SequentialAndInterleavedAgreeOnCorrectness) {
  Rng rng(23);
  const auto topo = gen::greyZoneField(32, 7.0, 1.5, 0.4, rng);
  const int k = 5;
  const auto workload = core::workloadRoundRobin(k, topo.n());
  RunConfig config;
  config.mac = enhParams(4, 64);
  config.scheduler = SchedulerKind::kRandom;
  for (const auto& params :
       {FmmbParams::make(topo.n()), FmmbParams::makeSequential(topo.n(), k)}) {
    core::Experiment experiment(topo, core::fmmbProtocol(params),
                                workload, config);
    const auto result = experiment.run();
    ASSERT_TRUE(result.solved);
    const auto mmb = core::checkMmbTrace(topo, workload,
                                         experiment.engine().trace());
    EXPECT_TRUE(mmb.ok);
  }
}

TEST(FmmbVariants, SequentialModeToleratesUnderestimatedK) {
  // The k hint only sizes the gather stage; a low hint means some
  // messages ride later gather... there is no later gather in
  // sequential mode, BUT messages owned by MIS nodes directly and the
  // spread relays still circulate them.  With all messages starting at
  // MIS-adjacent... to keep this honest we place all messages at one
  // node: if that node turns out non-MIS, its uploads must fit the
  // gather stage sized for k=1.  We therefore only assert that the
  // run either solves or hits the time limit without crashing —
  // underestimating k is a documented misuse, not UB.
  Rng rng(29);
  const auto topo = gen::greyZoneField(24, 7.0, 1.5, 0.4, rng);
  const auto params = FmmbParams::makeSequential(topo.n(), /*k hint=*/1);
  RunConfig config;
  config.mac = enhParams(4, 64);
  config.scheduler = SchedulerKind::kRandom;
  config.limits.maxTime = 200'000;
  const auto result =
      core::runExperiment(topo, core::fmmbProtocol(params),
                          core::workloadAllAtNode(4, 0), config);
  SUCCEED() << "completed without crash; solved=" << result.solved;
}

TEST(FmmbVariants, MsgCapacityAboveOneIsAccepted) {
  Rng rng(37);
  const auto topo = gen::greyZoneField(20, 6.0, 1.5, 0.4, rng);
  RunConfig config;
  config.mac = enhParams(4, 64);
  config.mac.msgCapacity = 3;  // protocols still send one per packet
  config.scheduler = SchedulerKind::kRandom;
  const auto result = core::runExperiment(
      topo, core::fmmbProtocol(FmmbParams::make(topo.n())),
      core::workloadAllAtNode(2, 0), config);
  EXPECT_TRUE(result.solved);
}

}  // namespace
}  // namespace ammb
