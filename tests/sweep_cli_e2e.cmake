# End-to-end drive of the ammb_sweep CLI, run as a ctest:
#
#   run 4 shards (different thread counts) -> merge -> byte-compare
#   against an unsharded reference run of the same spec; then exercise
#   the journal --resume path and the compare gate.
#
# Invoked with:
#   cmake -DAMMB_SWEEP=<tool> -DSPEC=<spec.json> -DWORKDIR=<dir>
#         -P sweep_cli_e2e.cmake
foreach(var AMMB_SWEEP SPEC WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sweep_cli_e2e.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

function(run_tool)
  execute_process(
    COMMAND ${AMMB_SWEEP} ${ARGN}
    WORKING_DIRECTORY "${WORKDIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ammb_sweep ${ARGN} failed (rc=${rc}):\n${out}\n${err}")
  endif()
endfunction()

# Unsharded reference (also the journal source for the resume check).
run_tool(run "${SPEC}" --threads 3 --json reference.json
         --journal journal.jsonl)

# Four shards at four different thread counts.
set(shard_files "")
foreach(i RANGE 3)
  math(EXPR threads "${i} + 1")
  run_tool(run "${SPEC}" --shard ${i}/4 --threads ${threads}
           --shard-json shard_${i}.json)
  list(APPEND shard_files shard_${i}.json)
endforeach()

# Merge must reproduce the reference document byte for byte.
run_tool(merge "${SPEC}" ${shard_files} --json merged.json)
file(READ "${WORKDIR}/reference.json" reference)
file(READ "${WORKDIR}/merged.json" merged)
if(NOT merged STREQUAL reference)
  message(FATAL_ERROR "merged shard output differs from the unsharded run")
endif()

# Kill-and-resume: drop the tail of the journal (losing complete lines
# AND leaving a torn final line), then --resume must reproduce the
# reference bytes.
file(READ "${WORKDIR}/journal.jsonl" journal)
string(LENGTH "${journal}" journal_len)
math(EXPR keep "${journal_len} * 2 / 3")
string(SUBSTRING "${journal}" 0 ${keep} truncated)
file(WRITE "${WORKDIR}/journal.jsonl" "${truncated}")
run_tool(run "${SPEC}" --threads 2 --journal journal.jsonl --resume
         --json resumed.json)
file(READ "${WORKDIR}/resumed.json" resumed)
if(NOT resumed STREQUAL reference)
  message(FATAL_ERROR "resumed run differs from the uninterrupted run")
endif()

# The compare gate: self-compare passes, a perturbed document fails.
run_tool(compare merged.json --baseline reference.json)
string(REPLACE "\"runs\": 2" "\"runs\": 3" perturbed "${reference}")
if(perturbed STREQUAL reference)
  # Keep the negative test honest if the spec's per-cell run count
  # ever changes: a no-op perturbation would misblame the compare gate.
  message(FATAL_ERROR "perturbation literal no longer matches the spec's "
                      "per-cell run count; update sweep_cli_e2e.cmake")
endif()
file(WRITE "${WORKDIR}/perturbed.json" "${perturbed}")
execute_process(
  COMMAND ${AMMB_SWEEP} compare perturbed.json --baseline reference.json
  WORKING_DIRECTORY "${WORKDIR}"
  RESULT_VARIABLE rc
  OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "compare accepted a perturbed result document")
endif()

# A bad execution-axis override must fail fast (before any run starts)
# with a message naming the flag it arrived through.
execute_process(
  COMMAND ${AMMB_SWEEP} run "${SPEC}" --backend tcp
  WORKING_DIRECTORY "${WORKDIR}"
  RESULT_VARIABLE rc
  OUTPUT_QUIET
  ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "run accepted an unknown --backend value")
endif()
if(NOT err MATCHES "--backend")
  message(FATAL_ERROR "override error does not name --backend:\n${err}")
endif()

message(STATUS "sweep CLI e2e: shard/merge/resume/compare all consistent")
