// The dynamic topology engine, end to end: TopologyView epoch
// materialization and CSR snapshots, schedule generators, the engine's
// boundary reconciliation, epoch-aware oracles, the stale-topology
// mutation fixture, dynamics-axis sweeps (deterministic at any thread
// count), and the spec-file round trip of the dynamics axis.
#include <gtest/gtest.h>

#include <sstream>

#include "check/fuzzer.h"
#include "check/mutation.h"
#include "graph/dynamics.h"
#include "graph/generators.h"
#include "graph/topology_view.h"
#include "runner/emit.h"
#include "runner/spec_io.h"
#include "runner/sweep_runner.h"
#include "test_util.h"

namespace ammb {
namespace {

namespace gen = graph::gen;
using graph::TopologyDynamics;
using graph::TopologyEvent;
using graph::TopologyView;

TopologyDynamics edgeDownAt(Time at, NodeId u, NodeId v) {
  TopologyDynamics dynamics;
  dynamics.epochs.push_back({at, {{TopologyEvent::Kind::kEdgeDown, u, v,
                                   false}}});
  return dynamics;
}

// --- TopologyView ------------------------------------------------------------

TEST(TopologyView, StaticViewIsTheBaseTopology) {
  const auto base = gen::identityDual(gen::line(5));
  const TopologyView view(base);
  EXPECT_FALSE(view.dynamic());
  EXPECT_EQ(view.epochCount(), 1);
  EXPECT_EQ(&view.dualAt(0), &base);  // no copy for the static case
  EXPECT_EQ(view.epochAt(0), 0);
  EXPECT_EQ(view.epochAt(1'000'000), 0);
  EXPECT_EQ(view.gEdgeLiveSince(0, 1, 2), 0);
  EXPECT_EQ(view.gEdgeLiveSince(0, 0, 2), kTimeNever);
  EXPECT_TRUE(view.gEdgeLiveThroughout(1, 2, 0, 999));
}

TEST(TopologyView, CsrSnapshotMatchesAdjacency) {
  Rng rng(7);
  const auto base = gen::withArbitraryNoise(gen::line(8), 4, rng);
  const TopologyView view(base);
  const graph::CsrSnapshot& csr = view.csrAt(0);
  for (NodeId u = 0; u < base.n(); ++u) {
    const auto& g = base.g().neighbors(u);
    const auto gSpan = csr.gNeighbors(u);
    ASSERT_EQ(gSpan.size(), g.size());
    EXPECT_TRUE(std::equal(gSpan.begin(), gSpan.end(), g.begin()));
    const auto& gp = base.gPrime().neighbors(u);
    const auto pSpan = csr.pNeighbors(u);
    ASSERT_EQ(pSpan.size(), gp.size());
    EXPECT_TRUE(std::equal(pSpan.begin(), pSpan.end(), gp.begin()));
    EXPECT_TRUE(csr.nodeAlive(u));
    for (NodeId v = 0; v < base.n(); ++v) {
      EXPECT_EQ(csr.hasGEdge(u, v), base.g().hasEdge(u, v));
      EXPECT_EQ(csr.hasPrimeEdge(u, v), base.gPrime().hasEdge(u, v));
    }
  }
}

TEST(TopologyView, CrashIsolatesAndRecoveryRestores) {
  const auto base = gen::identityDual(gen::line(4));
  TopologyDynamics dynamics;
  dynamics.epochs.push_back(
      {10, {{TopologyEvent::Kind::kNodeCrash, 1, kNoNode, false}}});
  dynamics.epochs.push_back(
      {20, {{TopologyEvent::Kind::kNodeRecover, 1, kNoNode, false}}});
  const TopologyView view(base, dynamics);
  ASSERT_EQ(view.epochCount(), 3);
  EXPECT_TRUE(view.dynamic());
  EXPECT_EQ(view.epochAt(9), 0);
  EXPECT_EQ(view.epochAt(10), 1);
  EXPECT_EQ(view.epochAt(19), 1);
  EXPECT_EQ(view.epochAt(20), 2);

  // While 1 is down both its links vanish and G splits; the underlying
  // edges survive the outage and come back intact.
  EXPECT_FALSE(view.nodeAliveAt(1, 1));
  EXPECT_EQ(view.dualAt(1).g().degree(1), 0u);
  EXPECT_FALSE(view.dualAt(1).g().hasEdge(0, 1));
  EXPECT_FALSE(view.dualAt(1).g().connected());
  EXPECT_TRUE(view.nodeAliveAt(2, 1));
  EXPECT_TRUE(view.dualAt(2).g().hasEdge(0, 1));
  EXPECT_TRUE(view.dualAt(2).g().connected());

  // Live-since restarts at the recovery boundary; the outage breaks
  // whole-window liveness.
  EXPECT_EQ(view.gEdgeLiveSince(0, 0, 1), 0);
  EXPECT_EQ(view.gEdgeLiveSince(1, 0, 1), kTimeNever);
  EXPECT_EQ(view.gEdgeLiveSince(2, 0, 1), 20);
  EXPECT_EQ(view.gEdgeLiveSince(2, 2, 3), 0);  // untouched link
  EXPECT_TRUE(view.gEdgeLiveThroughout(2, 3, 0, 25));
  EXPECT_FALSE(view.gEdgeLiveThroughout(0, 1, 5, 25));
  EXPECT_TRUE(view.gEdgeLiveThroughout(0, 1, 20, 25));
}

TEST(TopologyView, RejectsIllFormedDynamics) {
  const auto base = gen::identityDual(gen::line(3));
  {  // unordered boundaries
    TopologyDynamics d;
    d.epochs.push_back({20, {}});
    d.epochs.push_back({10, {}});
    EXPECT_THROW(TopologyView(base, d), Error);
  }
  {  // boundary at t = 0 (epoch 0 is the base)
    TopologyDynamics d;
    d.epochs.push_back({0, {}});
    EXPECT_THROW(TopologyView(base, d), Error);
  }
  // dropping a non-edge
  EXPECT_THROW(TopologyView(base, edgeDownAt(5, 0, 2)), Error);
  {  // crashing a crashed node
    TopologyDynamics d;
    d.epochs.push_back({5, {{TopologyEvent::Kind::kNodeCrash, 0, kNoNode,
                             false}}});
    d.epochs.push_back({6, {{TopologyEvent::Kind::kNodeCrash, 0, kNoNode,
                             false}}});
    EXPECT_THROW(TopologyView(base, d), Error);
  }
}

TEST(TopologyView, EdgeUpKeepsDualInvariant) {
  const auto base = gen::identityDual(gen::line(3));
  TopologyDynamics dynamics;
  // A new unreliable long link, then promote it into E.
  dynamics.epochs.push_back(
      {5, {{TopologyEvent::Kind::kEdgeUp, 0, 2, false}}});
  dynamics.epochs.push_back(
      {10, {{TopologyEvent::Kind::kEdgeUp, 0, 2, true}}});
  const TopologyView view(base, dynamics);
  EXPECT_FALSE(view.dualAt(0).gPrime().hasEdge(0, 2));
  EXPECT_TRUE(view.dualAt(1).gPrime().hasEdge(0, 2));
  EXPECT_FALSE(view.dualAt(1).g().hasEdge(0, 2));
  EXPECT_TRUE(view.dualAt(2).g().hasEdge(0, 2));
  EXPECT_EQ(view.gEdgeLiveSince(2, 0, 2), 10);
}

// --- schedule generators -----------------------------------------------------

TEST(DynamicsGenerators, CrashScheduleIsSeedDeterministicAndWellFormed) {
  const auto base = gen::identityDual(gen::line(12));
  Rng a(42);
  Rng b(42);
  const TopologyDynamics da = gen::crashRecoverySchedule(base, 3, 50, 20, a);
  const TopologyDynamics db = gen::crashRecoverySchedule(base, 3, 50, 20, b);
  ASSERT_EQ(da.epochs.size(), 6u);  // crash + recovery per episode
  for (std::size_t i = 0; i < da.epochs.size(); ++i) {
    EXPECT_EQ(da.epochs[i].start, db.epochs[i].start);
    ASSERT_EQ(da.epochs[i].events.size(), 1u);
    EXPECT_EQ(da.epochs[i].events[0].u, db.epochs[i].events[0].u);
  }
  // Applies cleanly: every crash recovers before the next one.
  const TopologyView view(base, da);
  EXPECT_EQ(view.epochCount(), 7);
  EXPECT_THROW(gen::crashRecoverySchedule(base, 1, 50, 50, a), Error);
}

TEST(DynamicsGenerators, GreyDriftChurnsOnlyTheFringe) {
  Rng topoRng(5);
  const auto base = gen::withRRestrictedNoise(gen::line(10), 2, 1.0, topoRng);
  ASSERT_GT(base.gPrime().edgeCount(), base.g().edgeCount());
  Rng rng(9);
  const TopologyDynamics dynamics =
      gen::greyZoneDriftSchedule(base, 5, 16, 0.5, rng);
  const TopologyView view(base, dynamics);
  ASSERT_EQ(view.epochCount(), 6);
  bool changed = false;
  for (int e = 0; e < view.epochCount(); ++e) {
    const graph::DualGraph& dual = view.dualAt(e);
    // E is never touched, so G stays the base line (and connected).
    EXPECT_EQ(dual.g().edgeCount(), base.g().edgeCount());
    EXPECT_TRUE(dual.g().connected());
    changed = changed ||
              dual.gPrime().edgeCount() != base.gPrime().edgeCount();
  }
  EXPECT_TRUE(changed);  // churn 0.5 over >= 8 edges: some epoch differs
}

// --- engine + oracles --------------------------------------------------------

core::RunConfig churnConfig(core::DynamicsSpec dynamics,
                            core::SchedulerKind scheduler,
                            std::uint64_t seed) {
  core::RunConfig config;
  config.mac = testutil::stdParams();
  config.scheduler = scheduler;
  config.dynamics = dynamics;
  config.seed = seed;
  config.recordTrace = true;
  config.limits.maxTime = 50'000;
  return config;
}

TEST(DynamicsEngine, CrashWithoutRecoveryStrandsAMessage) {
  // Message at the head of a line whose center crashes before relaying
  // finishes and never recovers within the horizon: unsolved, and the
  // epoch-aware oracles treat that as a measurement, not a violation.
  const auto base = gen::identityDual(gen::line(8));
  graph::TopologyDynamics dynamics;
  dynamics.epochs.push_back(
      {6, {{TopologyEvent::Kind::kNodeCrash, 4, kNoNode, false}}});
  const TopologyView view(base, dynamics);

  // Hand the engine the view directly (the Experiment facade is
  // exercised by the DynamicsSpec tests below).
  const mac::MacParams params = testutil::stdParams();
  const core::MmbWorkload workload = core::workloadAllAtNode(1, 0);
  core::SolveTracker tracker(base, workload);
  core::BmmbSuite suite(core::QueueDiscipline::kFifo);
  mac::MacEngine engine(view, params,
                        core::makeScheduler(core::SchedulerKind::kSlowAck),
                        suite.factory(), /*seed=*/3);
  tracker.attach(engine, /*stopOnSolve=*/true);
  for (const core::Arrival& a : workload.arrivals) {
    engine.injectArriveAt(a.node, a.msg, a.at);
  }
  tracker.markArrivalsComplete(0);
  const sim::RunStatus status = engine.run(/*timeLimit=*/50'000);
  EXPECT_EQ(status, sim::RunStatus::kDrained);
  EXPECT_FALSE(tracker.solved());
  EXPECT_TRUE(mac::checkTrace(view, params, engine.trace()).ok);
}

TEST(DynamicsEngine, CrashWithRecoverySolvesAndPassesOracles) {
  core::DynamicsSpec dynamics;
  dynamics.kind = core::DynamicsSpec::Kind::kCrash;
  dynamics.crashes = 2;
  dynamics.period = 48;
  dynamics.downFor = 24;
  int solvedRuns = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto base = gen::identityDual(gen::line(10));
    const core::MmbWorkload workload = core::workloadRoundRobin(3, base.n());
    core::Experiment experiment(
        base, core::bmmbProtocol(), workload,
        churnConfig(dynamics, core::SchedulerKind::kRandom, seed));
    const core::RunResult result = experiment.run();
    EXPECT_TRUE(experiment.view().dynamic());
    const check::OracleReport report = check::checkExecution(
        experiment.view(), core::bmmbProtocol(), experiment.engine().params(),
        workload, experiment.engine().trace(), result);
    EXPECT_TRUE(report.ok) << report.summary();
    solvedRuns += result.solved ? 1 : 0;
  }
  // Outages heal, so most seeds still solve; requiring one avoids
  // flaky exactness while proving recovery actually reconnects.
  EXPECT_GE(solvedRuns, 1);
}

TEST(DynamicsEngine, GreyDriftSolvesAndPassesOracles) {
  core::DynamicsSpec dynamics;
  dynamics.kind = core::DynamicsSpec::Kind::kGreyDrift;
  dynamics.epochs = 4;
  dynamics.period = 24;
  dynamics.churn = 0.5;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const auto base = gen::withRRestrictedNoise(gen::line(12), 2, 1.0, rng);
    const core::MmbWorkload workload = core::workloadRoundRobin(3, base.n());
    core::Experiment experiment(
        base, core::bmmbProtocol(), workload,
        churnConfig(dynamics, core::SchedulerKind::kAdversarialStuffing,
                    seed));
    const core::RunResult result = experiment.run();
    // E is untouched by drift, so the solve guarantee survives churn.
    EXPECT_TRUE(result.solved);
    const check::OracleReport report = check::checkExecution(
        experiment.view(), core::bmmbProtocol(), experiment.engine().params(),
        workload, experiment.engine().trace(), result);
    EXPECT_TRUE(report.ok) << report.summary();
  }
}

TEST(DynamicsEngine, ReplayIsBitDeterministic) {
  core::DynamicsSpec dynamics;
  dynamics.kind = core::DynamicsSpec::Kind::kCrash;
  dynamics.crashes = 1;
  dynamics.period = 32;
  dynamics.downFor = 16;
  check::FuzzCase fuzzCase;
  fuzzCase.topology = check::TopologyFamily::kGreyZoneField;
  fuzzCase.n = 12;
  fuzzCase.k = 3;
  fuzzCase.scheduler = core::SchedulerKind::kRandom;
  fuzzCase.seed = 77;
  fuzzCase.dynamics = dynamics;
  const check::ExecutionOutcome a = check::runCase(fuzzCase);
  const check::ExecutionOutcome b = check::runCase(fuzzCase);
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(a.traceHash, b.traceHash);
  EXPECT_TRUE(a.report.ok) << a.report.summary();
}

// --- the dynamics mutation family -------------------------------------------

TEST(DynamicsMutation, StaleTopologySchedulerIsCaughtByEpochAwareOracles) {
  check::FuzzCase fuzzCase;
  fuzzCase.topology = check::TopologyFamily::kRRestrictedLine;
  fuzzCase.n = 8;
  fuzzCase.k = 2;
  fuzzCase.noiseEdgeProb = 1.0;
  fuzzCase.scheduler = core::SchedulerKind::kFast;
  fuzzCase.seed = 5;
  const check::ExecutionOutcome outcome =
      check::runCase(fuzzCase, check::SchedulerMutation::kStaleTopology);
  ASSERT_TRUE(outcome.error.empty()) << outcome.error;
  ASSERT_FALSE(outcome.report.ok);
  bool sawOffGPrime = false;
  for (const mac::Violation& v : outcome.report.macRecords) {
    sawOffGPrime = sawOffGPrime || v.axiom == "rcv-off-gprime";
  }
  EXPECT_TRUE(sawOffGPrime)
      << "expected an epoch-aware rcv-off-gprime violation, got: "
      << outcome.report.summary();
}

TEST(DynamicsMutation, StaleTopologyCampaignFindsViolations) {
  check::FuzzSpec spec;
  spec.masterSeed = 11;
  spec.iterations = 6;
  spec.protocols = {core::ProtocolKind::kBmmb};
  spec.mutation = check::SchedulerMutation::kStaleTopology;
  spec.shrinkBudget = 24;
  const check::FuzzResult result = check::runFuzz(spec);
  // Zero violations from a broken scheduler would mean the epoch-aware
  // checker plumbing is itself broken.
  EXPECT_GT(result.violations, 0);
  ASSERT_FALSE(result.counterexamples.empty());
  EXPECT_GE(result.counterexamples.front().shrinkWins, 0);
}

// --- dynamics as a sweep axis ------------------------------------------------

runner::SweepSpec churnSweep() {
  runner::SweepSpec spec;
  spec.name = "churn-unit";
  spec.topologies = {runner::greyZoneFieldTopology(24, 6.0, 1.5, 0.4)};
  spec.schedulers = {core::SchedulerKind::kFast,
                     core::SchedulerKind::kRandom};
  spec.ks = {2};
  spec.macs = {{"std", testutil::stdParams()}};
  spec.workloads = {runner::roundRobinWorkload()};
  spec.dynamics = {runner::staticDynamics(), runner::crashDynamics(1, 48, 16),
                   runner::greyDriftDynamics(3, 32, 0.4)};
  spec.seedBegin = 1;
  spec.seedEnd = 4;
  spec.check = runner::CheckMode::kFull;
  spec.maxTime = 50'000;
  return spec;
}

TEST(DynamicsSweep, GridCoordinatesRoundTrip) {
  const runner::SweepSpec spec = churnSweep();
  EXPECT_EQ(spec.cellCount(), 6u);
  EXPECT_EQ(spec.runCount(), 18u);
  const auto points = runner::enumerateRuns(spec);
  ASSERT_EQ(points.size(), spec.runCount());
  for (const runner::RunPoint& p : points) {
    const runner::RunPoint q = runner::runPointFor(spec, p.runIndex);
    EXPECT_EQ(q.cellIndex, p.cellIndex);
    EXPECT_EQ(q.dynIdx, p.dynIdx);
    EXPECT_EQ(q.wlIdx, p.wlIdx);
    EXPECT_EQ(q.seed, p.seed);
  }
  // The dynamics axis is innermost: consecutive cells differ in dynIdx.
  EXPECT_EQ(points[0].dynIdx, 0u);
  const std::size_t seeds = spec.seedsPerCell();
  EXPECT_EQ(points[seeds].dynIdx, 1u);
  EXPECT_EQ(points[2 * seeds].dynIdx, 2u);
}

TEST(DynamicsSweep, ChurnCampaignIsThreadCountInvariantAndOracleClean) {
  const runner::SweepSpec spec = churnSweep();
  runner::SweepRunner::Options one;
  one.threads = 1;
  runner::SweepRunner::Options four;
  four.threads = 4;
  runner::SweepRunner::Options eight;
  eight.threads = 8;
  const runner::SweepResult r1 = runner::SweepRunner(one).run(spec);
  const runner::SweepResult r4 = runner::SweepRunner(four).run(spec);
  const runner::SweepResult r8 = runner::SweepRunner(eight).run(spec);
  EXPECT_EQ(runner::cellsCsv(r1), runner::cellsCsv(r4));
  EXPECT_EQ(runner::cellsCsv(r1), runner::cellsCsv(r8));
  EXPECT_EQ(r1.checkViolationCount(), 0u);
  EXPECT_EQ(r1.errorCount(), 0u);
  ASSERT_EQ(r1.runs.size(), r4.runs.size());
  for (std::size_t i = 0; i < r1.runs.size(); ++i) {
    EXPECT_EQ(r1.runs[i].traceHash, r4.runs[i].traceHash);
    EXPECT_EQ(r1.runs[i].traceHash, r8.runs[i].traceHash);
  }
  // The label column distinguishes the dynamics cells.
  const std::string csv = runner::cellsCsv(r1);
  EXPECT_NE(csv.find(",static,"), std::string::npos);
  EXPECT_NE(csv.find(",crash1p48d16,"), std::string::npos);
  EXPECT_NE(csv.find(",drift3p32c0.4,"), std::string::npos);
}

// --- spec files --------------------------------------------------------------

TEST(DynamicsSpecIo, DynamicsAxisRoundTrips) {
  const std::string text = R"({
    "name": "dyn-round-trip",
    "protocol": "bmmb",
    "topologies": [{"kind": "line", "n": 8}],
    "schedulers": ["fast"],
    "ks": [2],
    "macs": [{"name": "std", "fack": 32, "fprog": 4}],
    "workloads": [{"kind": "spread"}],
    "dynamics": [
      {"kind": "static"},
      {"kind": "crash", "crashes": 2, "period": 64, "down_for": 24},
      {"kind": "grey-drift", "epochs": 4, "period": 48, "churn": 0.35,
       "name": "gentle-drift"}
    ],
    "seed_begin": 1, "seed_end": 3
  })";
  const runner::SpecDoc doc = runner::parseSpec(text);
  ASSERT_EQ(doc.dynamics.size(), 3u);
  EXPECT_EQ(doc.dynamics[0].name, "static");
  EXPECT_EQ(doc.dynamics[1].name, "crash2p64d24");
  EXPECT_EQ(doc.dynamics[1].spec.downFor, 24);
  EXPECT_EQ(doc.dynamics[2].name, "gentle-drift");
  EXPECT_DOUBLE_EQ(doc.dynamics[2].spec.churn, 0.35);

  // Canonical writer fixpoint.
  const std::string canonical = runner::writeSpec(doc);
  const runner::SpecDoc reparsed = runner::parseSpec(canonical);
  EXPECT_EQ(runner::writeSpec(reparsed), canonical);
  EXPECT_EQ(runner::specFingerprint(doc), runner::specFingerprint(reparsed));

  const runner::SweepSpec spec = runner::buildSweep(doc);
  ASSERT_EQ(spec.dynamics.size(), 3u);
  EXPECT_EQ(spec.dynamics[2].name, "gentle-drift");
  EXPECT_EQ(spec.cellCount(), 3u);

  // Omitting the key defaults to a single static point; an empty axis
  // and unknown knobs are rejected loudly.
  runner::SpecDoc defaulted = runner::parseSpec(R"({
    "name": "s", "protocol": "bmmb",
    "topologies": [{"kind": "line", "n": 4}], "schedulers": ["fast"],
    "ks": [1], "macs": [{}], "workloads": [{"kind": "round-robin"}],
    "seed_begin": 1, "seed_end": 2
  })");
  ASSERT_EQ(defaulted.dynamics.size(), 1u);
  EXPECT_TRUE(defaulted.dynamics[0].spec.isStatic());
  EXPECT_THROW(runner::parseSpec(R"({
    "name": "s", "protocol": "bmmb",
    "topologies": [{"kind": "line", "n": 4}], "schedulers": ["fast"],
    "ks": [1], "macs": [{}], "workloads": [{"kind": "round-robin"}],
    "dynamics": [{"kind": "crash", "crashes": 1, "period": 8,
                  "down_for": 4, "typo": 1}],
    "seed_begin": 1, "seed_end": 2
  })"),
               Error);
}

TEST(DynamicsSpecIo, ChurnGridSpecFileBuildsAndRuns) {
  const runner::SpecDoc doc =
      runner::loadSpecFile(std::string(AMMB_SWEEPS_DIR) + "/churn_grid.json");
  ASSERT_EQ(doc.dynamics.size(), 3u);
  EXPECT_EQ(doc.check, runner::CheckMode::kFull);
  runner::SweepSpec spec = runner::buildSweep(doc);
  // One cell per dynamics kind, one seed: a fast end-to-end smoke that
  // the committed campaign's dynamic cells execute and check clean.
  spec.topologies = {spec.topologies[1]};
  spec.schedulers = {core::SchedulerKind::kFast};
  spec.ks = {2};
  spec.workloads = {spec.workloads[0]};
  spec.seedEnd = spec.seedBegin + 1;
  const runner::SweepResult result = runner::SweepRunner().run(spec);
  EXPECT_EQ(result.errorCount(), 0u);
  EXPECT_EQ(result.checkViolationCount(), 0u);
  EXPECT_EQ(result.cells.size(), 3u);
}

}  // namespace
}  // namespace ammb
