// Unit tests for the MMB problem layer: workloads, solve tracking,
// problem-level trace checking.
#include <gtest/gtest.h>

#include "core/mmb.h"
#include "graph/generators.h"

namespace ammb::core {
namespace {

namespace gen = graph::gen;
using sim::Trace;
using sim::TraceKind;

TEST(Workload, AllAtNode) {
  const auto w = workloadAllAtNode(4, 2);
  EXPECT_EQ(w.k, 4);
  ASSERT_EQ(w.arrivals.size(), 4u);
  for (const auto& a : w.arrivals) EXPECT_EQ(a.node, 2);
}

TEST(Workload, RoundRobinSingleton) {
  const auto w = workloadRoundRobin(5, 7, 1, 2);
  ASSERT_EQ(w.arrivals.size(), 5u);
  EXPECT_EQ(w.arrivals[0].node, 1);
  EXPECT_EQ(w.arrivals[1].node, 3);
  EXPECT_EQ(w.arrivals[4].node, (1 + 8) % 7);
}

TEST(Workload, RandomInRange) {
  Rng rng(4);
  const auto w = workloadRandom(20, 5, rng);
  for (const auto& a : w.arrivals) {
    EXPECT_GE(a.node, 0);
    EXPECT_LT(a.node, 5);
  }
}

TEST(Workload, RejectsInvalid) {
  Rng rng(1);
  EXPECT_THROW(workloadAllAtNode(0, 1), Error);
  EXPECT_THROW(workloadRoundRobin(3, 0), Error);
  EXPECT_THROW(workloadRandom(0, 5, rng), Error);
}

TEST(SolveTracker, RequiresOnlyOwnComponent) {
  // Two disjoint 2-node lines.
  graph::Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  g.finalize();
  const auto topo = gen::identityDual(std::move(g));
  MmbWorkload w;
  w.k = 1;
  w.arrivals = {{0, 0}};
  SolveTracker tracker(topo, w);
  // Only nodes 0 and 1 must deliver message 0.
  EXPECT_EQ(tracker.remaining(), 2);
}

TEST(CheckMmbTrace, AcceptsCompleteExecution) {
  const auto topo = gen::identityDual(gen::line(2));
  MmbWorkload w;
  w.k = 1;
  w.arrivals = {{0, 0}};
  Trace trace;
  trace.add({0, TraceKind::kArrive, 0, kNoInstance, 0});
  trace.add({0, TraceKind::kDeliver, 0, kNoInstance, 0});
  trace.add({5, TraceKind::kDeliver, 1, kNoInstance, 0});
  const auto res = checkMmbTrace(topo, w, trace);
  EXPECT_TRUE(res.ok) << res.violations.front();
}

TEST(CheckMmbTrace, DetectsMissingDelivery) {
  const auto topo = gen::identityDual(gen::line(3));
  MmbWorkload w;
  w.k = 1;
  w.arrivals = {{0, 0}};
  Trace trace;
  trace.add({0, TraceKind::kArrive, 0, kNoInstance, 0});
  trace.add({0, TraceKind::kDeliver, 0, kNoInstance, 0});
  const auto res = checkMmbTrace(topo, w, trace);
  EXPECT_FALSE(res.ok);
  // Truncated-run mode skips completeness.
  EXPECT_TRUE(checkMmbTrace(topo, w, trace, /*requireSolved=*/false).ok);
}

TEST(CheckMmbTrace, DetectsDoubleDelivery) {
  const auto topo = gen::identityDual(gen::line(2));
  MmbWorkload w;
  w.k = 1;
  w.arrivals = {{0, 0}};
  Trace trace;
  trace.add({0, TraceKind::kArrive, 0, kNoInstance, 0});
  trace.add({0, TraceKind::kDeliver, 0, kNoInstance, 0});
  trace.add({1, TraceKind::kDeliver, 1, kNoInstance, 0});
  trace.add({2, TraceKind::kDeliver, 1, kNoInstance, 0});
  EXPECT_FALSE(checkMmbTrace(topo, w, trace).ok);
}

TEST(CheckMmbTrace, DetectsDeliveryBeforeArrival) {
  const auto topo = gen::identityDual(gen::line(2));
  MmbWorkload w;
  w.k = 1;
  w.arrivals = {{0, 0}};
  Trace trace;
  trace.add({0, TraceKind::kDeliver, 1, kNoInstance, 0});
  trace.add({1, TraceKind::kArrive, 0, kNoInstance, 0});
  trace.add({1, TraceKind::kDeliver, 0, kNoInstance, 0});
  EXPECT_FALSE(checkMmbTrace(topo, w, trace).ok);
}

TEST(CheckMmbTrace, DetectsUnknownMessage) {
  const auto topo = gen::identityDual(gen::line(2));
  MmbWorkload w;
  w.k = 1;
  w.arrivals = {{0, 0}};
  Trace trace;
  trace.add({0, TraceKind::kArrive, 0, kNoInstance, 0});
  trace.add({0, TraceKind::kDeliver, 0, kNoInstance, 7});
  EXPECT_FALSE(checkMmbTrace(topo, w, trace, false).ok);
}

}  // namespace
}  // namespace ammb::core
