// Unit tests for the graph substrate: generators, metrics, dual graphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace ammb::graph {
namespace {

TEST(Graph, LineBasics) {
  const Graph g = gen::line(5);
  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.edgeCount(), 4u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_EQ(g.diameter(), 4);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Graph, RingAndStar) {
  const Graph ring = gen::ring(8);
  EXPECT_EQ(ring.edgeCount(), 8u);
  EXPECT_EQ(ring.diameter(), 4);
  const Graph star = gen::star(10);
  EXPECT_EQ(star.edgeCount(), 9u);
  EXPECT_EQ(star.diameter(), 2);
  EXPECT_EQ(star.degree(0), 9u);
}

TEST(Graph, GridMetrics) {
  const Graph g = gen::grid(4, 3);
  EXPECT_EQ(g.n(), 12);
  EXPECT_EQ(g.edgeCount(), static_cast<std::size_t>(3 * 3 + 4 * 2));
  EXPECT_EQ(g.diameter(), 3 + 2);
  const auto dist = g.bfsDistances(0);
  EXPECT_EQ(dist[11], 5);  // opposite corner
}

TEST(Graph, RandomTreeIsConnectedAcyclic) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::randomTree(20, rng);
    EXPECT_EQ(g.edgeCount(), 19u);
    EXPECT_TRUE(g.connected());
  }
}

TEST(Graph, BfsUnreachableIsMinusOne) {
  Graph g(4);
  g.addEdge(0, 1);
  g.finalize();
  const auto dist = g.bfsDistances(0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(g.componentCount(), 3);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, MultiSourceBfs) {
  const Graph g = gen::line(9);
  const auto dist = g.bfsDistancesMulti({0, 8});
  EXPECT_EQ(dist[4], 4);
  EXPECT_EQ(dist[7], 1);
}

// The dynamics engine materializes disconnected graphs routinely (a
// crashed node is an isolated vertex; a dropped bridge splits G), so
// the BFS and power primitives must be exact there, not just on the
// connected families the generators produce.
TEST(Graph, MultiSourceBfsOnDisconnectedGraph) {
  // Components {0,1,2}, {3,4}, {5}.
  Graph g(6);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);
  g.finalize();
  const auto dist = g.bfsDistancesMulti({0, 3});
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[4], 1);
  EXPECT_EQ(dist[5], -1);  // no source in the singleton component
  // Sources covering no component leave it unreached; duplicate
  // sources are idempotent.
  const auto dup = g.bfsDistancesMulti({5, 5});
  EXPECT_EQ(dup[5], 0);
  EXPECT_EQ(dup[0], -1);
  EXPECT_EQ(dup[3], -1);
  // An empty source set reaches nothing.
  const auto none = g.bfsDistancesMulti({});
  for (int d : none) EXPECT_EQ(d, -1);
}

TEST(Graph, PowerOfDisconnectedGraphStaysWithinComponents) {
  // Two 3-node paths: 0-1-2 and 3-4-5.
  Graph g(6);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);
  g.addEdge(4, 5);
  g.finalize();
  const Graph g2 = g.power(2);
  EXPECT_TRUE(g2.hasEdge(0, 2));
  EXPECT_TRUE(g2.hasEdge(3, 5));
  // No power ever bridges components, and labels are preserved.
  EXPECT_FALSE(g2.hasEdge(2, 3));
  EXPECT_EQ(g2.componentCount(), 2);
  const Graph g9 = g.power(9);  // r beyond any diameter: per-component clique
  EXPECT_EQ(g9.edgeCount(), 6u);
  EXPECT_EQ(g9.componentCount(), 2);
  EXPECT_EQ(g.componentLabels(), g9.componentLabels());
}

TEST(Graph, PowerGraph) {
  const Graph g = gen::line(6);
  const Graph g2 = g.power(2);
  EXPECT_TRUE(g2.hasEdge(0, 2));
  EXPECT_TRUE(g2.hasEdge(0, 1));
  EXPECT_FALSE(g2.hasEdge(0, 3));
  EXPECT_EQ(g2.edgeCount(), 5u + 4u);
  const Graph g5 = g.power(5);
  EXPECT_EQ(g5.edgeCount(), 15u);  // complete graph on 6 nodes
}

TEST(Graph, RejectsBadInput) {
  Graph g(3);
  EXPECT_THROW(g.addEdge(0, 0), Error);
  EXPECT_THROW(g.addEdge(0, 5), Error);
#ifndef NDEBUG
  // Query-path bounds/finalization checks are AMMB_DCHECK: they throw
  // in debug builds and compile out of release hot paths (the CSR
  // snapshots and generators validate adjacency at build time).
  EXPECT_THROW(g.neighbors(0), Error);  // not finalized
#endif
  g.finalize();
  EXPECT_THROW(g.power(0), Error);
}

TEST(Graph, AddEdgeIdempotent) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  g.finalize();
  EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(DualGraph, RejectsNonSubsetReliableEdges) {
  Graph g = gen::line(4);
  Graph gp(4);
  gp.addEdge(0, 1);  // missing edges 1-2, 2-3
  gp.finalize();
  EXPECT_THROW(DualGraph(std::move(g), std::move(gp)), Error);
}

TEST(DualGraph, RestrictionRadius) {
  Rng rng(1);
  const auto identity = gen::identityDual(gen::line(8));
  EXPECT_EQ(identity.restrictionRadius().value(), 1);
  EXPECT_TRUE(identity.isRRestricted(1));

  const auto r3 = gen::withRRestrictedNoise(gen::line(20), 3, 1.0, rng);
  EXPECT_EQ(r3.restrictionRadius().value(), 3);
  EXPECT_TRUE(r3.isRRestricted(3));
  EXPECT_FALSE(r3.isRRestricted(2));
}

TEST(DualGraph, RestrictionRadiusAcrossComponentsIsUnbounded) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  g.finalize();
  Graph gp(4);
  gp.addEdge(0, 1);
  gp.addEdge(2, 3);
  gp.addEdge(1, 2);  // unreliable bridge between G-components
  gp.finalize();
  const DualGraph dual(std::move(g), std::move(gp));
  EXPECT_FALSE(dual.restrictionRadius().has_value());
}

TEST(DualGraph, ArbitraryNoiseCounts) {
  Rng rng(5);
  const auto dual = gen::withArbitraryNoise(gen::line(30), 12, rng);
  EXPECT_EQ(dual.gPrime().edgeCount(), dual.g().edgeCount() + 12);
}

TEST(DualGraph, GreyZoneFromPointsRespectsUnitDiskAndC) {
  Rng rng(11);
  auto pts = gen::randomPoints(60, 7.0, 7.0, rng);
  const auto dual = gen::greyZoneFromPoints(std::move(pts), 2.0, 0.5, rng);
  EXPECT_TRUE(dual.satisfiesGreyZone(2.0));
  // Every unreliable edge spans distance in (1, 2].
  const auto& emb = dual.embedding().value();
  for (const auto& [u, v] : dual.gPrime().edges()) {
    const double d = distance(emb[static_cast<std::size_t>(u)],
                              emb[static_cast<std::size_t>(v)]);
    if (dual.g().hasEdge(u, v)) {
      EXPECT_LE(d, 1.0 + 1e-9);
    } else {
      EXPECT_GT(d, 1.0);
      EXPECT_LE(d, 2.0 + 1e-9);
    }
  }
}

TEST(DualGraph, GreyZoneUnitDiskIsConnected) {
  Rng rng(17);
  gen::GreyZoneParams params;
  params.n = 64;
  params.width = 6.0;
  params.height = 6.0;
  const auto dual = gen::greyZoneUnitDisk(params, rng);
  EXPECT_TRUE(dual.g().connected());
  EXPECT_TRUE(dual.satisfiesGreyZone(params.c));
}

TEST(DualGraph, LinePointsGridPointsEmbeddings) {
  Rng rng(2);
  const auto lineDual =
      gen::greyZoneFromPoints(gen::linePoints(10), 2.5, 0.8, rng);
  EXPECT_EQ(lineDual.g().diameter(), 9);
  EXPECT_TRUE(lineDual.satisfiesGreyZone(2.5));
  // r-restriction follows from geometry: an edge of length <= 2.5 joins
  // nodes at most 3 hops apart on the unit-spaced line.
  EXPECT_LE(lineDual.restrictionRadius().value(), 3);

  const auto gridDual =
      gen::greyZoneFromPoints(gen::gridPoints(5, 4), 2.0, 0.4, rng);
  EXPECT_TRUE(gridDual.satisfiesGreyZone(2.0));
}

TEST(LowerBoundNetworkC, StructureMatchesFigure2) {
  const int D = 8;
  const auto net = gen::lowerBoundNetworkC(D);
  EXPECT_EQ(net.n(), 2 * D);
  // G: two disjoint lines.
  EXPECT_EQ(net.g().componentCount(), 2);
  EXPECT_EQ(net.g().edgeCount(), static_cast<std::size_t>(2 * (D - 1)));
  // G' adds exactly the 2(D-1) diagonal cross edges.
  EXPECT_EQ(net.gPrime().edgeCount(), static_cast<std::size_t>(4 * (D - 1)));
  EXPECT_TRUE(net.isUnreliableOnlyEdge(0, D + 1));      // a_0 - b_1
  EXPECT_TRUE(net.isUnreliableOnlyEdge(D + 0, 1));      // b_0 - a_1
  EXPECT_FALSE(net.gPrime().hasEdge(0, D));             // a_0 - b_0 absent
  // The embedding realizes the grey zone for c >= 1.5.
  EXPECT_TRUE(net.satisfiesGreyZone(1.5));
  EXPECT_FALSE(net.satisfiesGreyZone(1.2));
  // No finite r-restriction: cross edges join different G-components.
  EXPECT_FALSE(net.restrictionRadius().has_value());
}

TEST(BridgeStar, StructureMatchesLemma318) {
  const int k = 6;
  const auto net = gen::bridgeStar(k);
  EXPECT_EQ(net.n(), k + 1);
  const NodeId center = k - 1;
  const NodeId receiver = k;
  EXPECT_EQ(net.g().degree(center), static_cast<std::size_t>(k));
  EXPECT_EQ(net.g().degree(receiver), 1u);
  EXPECT_EQ(net.restrictionRadius().value(), 1);  // G' = G
}

TEST(Generators, RejectBadParameters) {
  Rng rng(1);
  EXPECT_THROW(gen::line(0), Error);
  EXPECT_THROW(gen::ring(2), Error);
  EXPECT_THROW(gen::star(1), Error);
  EXPECT_THROW(gen::grid(0, 3), Error);
  EXPECT_THROW(gen::lowerBoundNetworkC(1), Error);
  EXPECT_THROW(gen::bridgeStar(1), Error);
  EXPECT_THROW(gen::withRRestrictedNoise(gen::line(4), 0, 0.5, rng), Error);
  EXPECT_THROW(gen::withArbitraryNoise(gen::line(3), 100, rng), Error);
  EXPECT_THROW(gen::greyZoneFromPoints(gen::linePoints(3), 0.5, 0.1, rng),
               Error);
}

TEST(Graph, EdgesListRoundTrip) {
  Rng rng(9);
  const Graph g = gen::randomTree(15, rng);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), g.edgeCount());
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(g.hasEdge(u, v));
  }
}

}  // namespace
}  // namespace ammb::graph
