// Golden-trace regression: the canonical snapshot suite must match the
// checked-in `.golden` files byte for byte (AMMB_UPDATE_GOLDEN=1
// refreshes them), and CheckMode sweeps must produce bit-identical
// canonical traces at any worker-thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "check/golden.h"
#include "runner/emit.h"
#include "runner/sweep_runner.h"
#include "test_util.h"

#ifndef AMMB_GOLDEN_DIR
#error "AMMB_GOLDEN_DIR must point at the checked-in golden directory"
#endif

namespace ammb::check {
namespace {

using core::SchedulerKind;
using runner::CheckMode;
using runner::SweepRunner;
using runner::SweepSpec;

TEST(GoldenTraces, SuiteMatchesCheckedInSnapshots) {
  GoldenStore store(AMMB_GOLDEN_DIR);
  const bool update = updateGoldensRequested();
  for (const GoldenCase& gc : goldenCaseSuite()) {
    const ExecutionOutcome outcome =
        runCase(gc.fuzzCase, SchedulerMutation::kNone,
                /*keepCanonicalTrace=*/true);
    ASSERT_TRUE(outcome.error.empty()) << gc.name << ": " << outcome.error;
    ASSERT_TRUE(outcome.report.ok)
        << gc.name << ": " << outcome.report.summary();
    ASSERT_FALSE(outcome.canonicalTrace.empty()) << gc.name;
    const auto comparison =
        store.check(gc.name, goldenDocument(gc, outcome), update);
    EXPECT_TRUE(comparison.ok()) << gc.name << ": " << comparison.message;
  }
}

TEST(GoldenTraces, CanonicalSerializationIsStable) {
  // The serialization itself is part of the golden format: a change
  // here invalidates every snapshot, so pin its shape directly.
  sim::Trace trace;
  trace.add({0, sim::TraceKind::kArrive, 3, kNoInstance, 7});
  trace.add({5, sim::TraceKind::kBcast, 3, 2, kNoMsg});
  EXPECT_EQ(canonicalTrace(trace),
            "t=0 arrive node=3 msg=7\nt=5 bcast node=3 inst=2\n");
  // Hash is a pure function of the records and differs across traces.
  EXPECT_EQ(traceHash(trace), traceHash(trace));
  sim::Trace other;
  other.add({0, sim::TraceKind::kArrive, 3, kNoInstance, 8});
  EXPECT_NE(traceHash(trace), traceHash(other));

  core::RunResult result;
  result.solved = true;
  result.solveTime = 41;
  result.endTime = 41;
  result.status = sim::RunStatus::kStopped;
  const std::string text = canonicalRunResult(result);
  EXPECT_NE(text.find("solved=1"), std::string::npos);
  EXPECT_NE(text.find("solve_time=41"), std::string::npos);
  EXPECT_NE(text.find("status=stopped"), std::string::npos);

  core::RunResult unsolved;
  EXPECT_NE(canonicalRunResult(unsolved).find("solve_time=never"),
            std::string::npos);
}

TEST(GoldenStoreUnit, DetectsMismatchAndMissing) {
  const std::string dir = ::testing::TempDir() + "ammb_golden_unit";
  std::filesystem::remove_all(dir);  // stale state from earlier runs
  GoldenStore store(dir);
  const auto missing = store.check("case", "a\nb\n", /*update=*/false);
  EXPECT_EQ(missing.outcome, GoldenStore::Outcome::kMissing);

  const auto written = store.check("case", "a\nb\n", /*update=*/true);
  EXPECT_EQ(written.outcome, GoldenStore::Outcome::kWritten);

  const auto match = store.check("case", "a\nb\n", /*update=*/false);
  EXPECT_EQ(match.outcome, GoldenStore::Outcome::kMatch);

  const auto mismatch = store.check("case", "a\nc\n", /*update=*/false);
  EXPECT_EQ(mismatch.outcome, GoldenStore::Outcome::kMismatch);
  EXPECT_NE(mismatch.message.find("line 2"), std::string::npos)
      << mismatch.message;
}

/// A checked sweep mixing deterministic and RNG-driven cells.
SweepSpec checkedSweepSpec() {
  SweepSpec spec;
  spec.name = "checked-sweep";
  spec.topologies = {runner::lineTopology(8),
                     runner::arbitraryNoiseLineTopology(10, 3)};
  spec.schedulers = {SchedulerKind::kFast, SchedulerKind::kRandom,
                     SchedulerKind::kAdversarial};
  spec.ks = {2, 4};
  spec.macs = {{"f4a32", testutil::stdParams(4, 32)}};
  spec.workloads = {runner::roundRobinWorkload(),
                    runner::poissonWorkload(8.0)};
  spec.seedBegin = 1;
  spec.seedEnd = 4;
  spec.check = CheckMode::kFull;
  spec.keepCanonicalTraces = true;
  return spec;
}

TEST(CheckModeSweep, GoldenTracesBitIdenticalAcrossWorkerCounts) {
  const SweepSpec spec = checkedSweepSpec();

  SweepRunner::Options one;
  one.threads = 1;
  const auto base = SweepRunner(one).run(spec);
  EXPECT_EQ(base.errorCount(), 0u);
  EXPECT_EQ(base.checkViolationCount(), 0u);
  ASSERT_EQ(base.runs.size(), spec.runCount());
  for (const auto& record : base.runs) {
    EXPECT_TRUE(record.checked);
    EXPECT_TRUE(record.checkViolations.empty())
        << record.checkViolations.front();
    EXPECT_FALSE(record.canonicalTrace.empty());
    EXPECT_NE(record.traceHash, 0u);
  }

  const std::string baseCsv = runner::cellsCsv(base);
  for (int threads : {4, 8}) {
    SweepRunner::Options options;
    options.threads = threads;
    const auto result = SweepRunner(options).run(spec);
    ASSERT_EQ(result.runs.size(), base.runs.size());
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
      // The acceptance bar: byte-identical canonical snapshots, not
      // just equal aggregates.
      EXPECT_EQ(result.runs[i].canonicalTrace, base.runs[i].canonicalTrace)
          << "run " << i << " at " << threads << " threads";
      EXPECT_EQ(result.runs[i].traceHash, base.runs[i].traceHash);
    }
    EXPECT_EQ(runner::cellsCsv(result), baseCsv) << threads << " threads";
  }
}

TEST(CheckModeSweep, AggregatesAndEmittersCarryCheckColumns) {
  SweepSpec spec = checkedSweepSpec();
  spec.keepCanonicalTraces = false;
  const auto result = SweepRunner().run(spec);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.checkedRuns, cell.runs - cell.errors);
    EXPECT_EQ(cell.checkViolations, 0u);
  }
  const std::string csv = runner::cellsCsv(result);
  EXPECT_NE(csv.find("checked_runs,check_violations"), std::string::npos);
  const std::string json = runner::toJson(result);
  EXPECT_NE(json.find("\"checked_runs\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"check_violations\": 0"), std::string::npos);

  std::ostringstream runsCsv;
  runner::emitRunsCsv(result, runsCsv);
  EXPECT_NE(runsCsv.str().find("checked,check_violations,trace_hash"),
            std::string::npos);
}

TEST(CheckModeSweep, ValidationRejectsCanonicalTracesWithoutCheck) {
  SweepSpec spec = checkedSweepSpec();
  spec.check = CheckMode::kOff;
  EXPECT_THROW(spec.validate(), Error);
}

}  // namespace
}  // namespace ammb::check
