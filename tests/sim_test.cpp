// Unit tests for the discrete-event kernel and traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/trace.h"

namespace ammb::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), RunStatus::kDrained);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTickFollowsInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbacksMaySchedule) {
  EventQueue q;
  std::vector<Time> times;
  q.schedule(1, [&] {
    times.push_back(q.now());
    q.schedule(5, [&] { times.push_back(q.now()); });
    q.scheduleAfter(0, [&] { times.push_back(q.now()); });  // same tick
  });
  q.run();
  EXPECT_EQ(times, (std::vector<Time>{1, 1, 5}));
}

TEST(EventQueue, RejectsPastAndNull) {
  EventQueue q;
  q.schedule(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule(5, [] {}), Error);
  EXPECT_THROW(q.schedule(20, nullptr), Error);
  EXPECT_THROW(q.scheduleAfter(-1, [] {}), Error);
  // An empty std::function must be rejected at schedule time, not
  // explode as bad_function_call when the event fires.
  std::function<void()> empty;
  EXPECT_THROW(q.schedule(20, empty), Error);
  void (*nullFp)() = nullptr;
  EXPECT_THROW(q.schedule(20, nullFp), Error);
}

TEST(EventQueue, Cancel) {
  EventQueue q;
  int hits = 0;
  const EventHandle h = q.schedule(10, [&] { ++hits; });
  q.schedule(20, [&] { ++hits; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));      // double cancel
  EXPECT_FALSE(q.cancel(99999));  // unknown handle
  q.run();
  EXPECT_EQ(hits, 1);
}

TEST(EventQueue, PendingCountExcludesCancelled) {
  // Regression: the seed kernel used lazy tombstones, so cancelled
  // events were still reported as pending until reaped by run().
  EventQueue q;
  const EventHandle a = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.schedule(30, [] {});
  EXPECT_EQ(q.pendingCount(), 3u);
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.pendingCount(), 2u);
  q.run();
  EXPECT_EQ(q.pendingCount(), 0u);
  EXPECT_EQ(q.processedCount(), 2u);
}

TEST(EventQueue, CancelAfterExecutionFails) {
  EventQueue q;
  const EventHandle h = q.schedule(5, [] {});
  q.run();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, StaleHandleDoesNotCancelReusedSlot) {
  EventQueue q;
  int hits = 0;
  const EventHandle a = q.schedule(10, [&] { ++hits; });
  EXPECT_TRUE(q.cancel(a));
  // The pooled slot is reused by the next schedule; the stale handle
  // must not be able to cancel the new occupant.
  const EventHandle b = q.schedule(12, [&] { hits += 10; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));
  q.run();
  EXPECT_EQ(hits, 10);
}

TEST(EventQueue, CancelFromInsideCallback) {
  EventQueue q;
  int hits = 0;
  const EventHandle later = q.schedule(20, [&] { ++hits; });
  q.schedule(10, [&] { EXPECT_TRUE(q.cancel(later)); });
  EXPECT_EQ(q.run(), RunStatus::kDrained);
  EXPECT_EQ(hits, 0);
}

TEST(EventQueue, CancelMiddleKeepsOrder) {
  // Removing an interior heap entry must not disturb (time, insertion)
  // execution order of the survivors.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 32; ++i) {
    handles.push_back(
        q.schedule(100 - 3 * (i % 7), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 32; i += 3) EXPECT_TRUE(q.cancel(handles[i]));
  q.run();
  std::vector<int> expected;
  for (int i = 0; i < 32; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  std::sort(expected.begin(), expected.end(), [](int a, int b) {
    const int ta = 100 - 3 * (a % 7), tb = 100 - 3 * (b % 7);
    if (ta != tb) return ta < tb;
    return a < b;
  });
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, SlotPoolReusesCapacity) {
  // Steady-state churn must recycle slots instead of growing the pool.
  EventQueue q;
  std::function<void()> chain = [&] {
    if (q.now() < 1000) q.scheduleAfter(1, chain);
  };
  q.schedule(0, chain);
  q.run();
  EXPECT_EQ(q.processedCount(), 1001u);
  EXPECT_LE(q.slotCapacity(), 4u);
}

TEST(EventQueue, TimeLimitStopsBeforeLaterEvents) {
  EventQueue q;
  int hits = 0;
  q.schedule(10, [&] { ++hits; });
  q.schedule(50, [&] { ++hits; });
  EXPECT_EQ(q.run(20), RunStatus::kTimeLimit);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(q.pendingCount(), 1u);
  EXPECT_EQ(q.run(), RunStatus::kDrained);
  EXPECT_EQ(hits, 2);
}

TEST(EventQueue, EventAtLimitStillRuns) {
  EventQueue q;
  int hits = 0;
  q.schedule(20, [&] { ++hits; });
  EXPECT_EQ(q.run(20), RunStatus::kDrained);
  EXPECT_EQ(hits, 1);
}

TEST(EventQueue, RequestStop) {
  EventQueue q;
  int hits = 0;
  q.schedule(1, [&] {
    ++hits;
    q.requestStop();
  });
  q.schedule(2, [&] { ++hits; });
  EXPECT_EQ(q.run(), RunStatus::kStopped);
  EXPECT_EQ(hits, 1);
}

TEST(EventQueue, EventLimit) {
  EventQueue q;
  // A self-perpetuating chain is cut by the safety cap.
  std::function<void()> loop = [&] { q.scheduleAfter(1, loop); };
  q.schedule(0, loop);
  EXPECT_EQ(q.run(kTimeNever, 100), RunStatus::kEventLimit);
  EXPECT_EQ(q.processedCount(), 100u);
}

TEST(Trace, RecordsAndDisable) {
  Trace on(true);
  on.add({3, TraceKind::kBcast, 1, 7, kNoMsg});
  EXPECT_EQ(on.size(), 1u);
  EXPECT_EQ(on.records()[0].instance, 7);

  Trace off(false);
  off.add({3, TraceKind::kBcast, 1, 7, kNoMsg});
  EXPECT_EQ(off.size(), 0u);
}

TEST(Trace, ToStringMentionsFields) {
  const TraceRecord rec{42, TraceKind::kDeliver, 3, kNoInstance, 9};
  const std::string s = toString(rec);
  EXPECT_NE(s.find("t=42"), std::string::npos);
  EXPECT_NE(s.find("deliver"), std::string::npos);
  EXPECT_NE(s.find("msg=9"), std::string::npos);
}

}  // namespace
}  // namespace ammb::sim
