// Tests for the parallel sweep-runner subsystem: spec validation, grid
// enumeration (including the workload axis), execution, aggregation
// determinism across worker-pool sizes, and the CSV/JSON emitters.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "runner/emit.h"
#include "runner/sweep_runner.h"
#include "test_util.h"

namespace ammb {
namespace {

using core::ProtocolKind;
using core::SchedulerKind;
using runner::SweepRunner;
using runner::SweepSpec;

/// A 16-cell, 64-run BMMB grid small enough for unit tests but wide
/// enough to exercise every axis.
SweepSpec smallBmmbSpec() {
  SweepSpec spec;
  spec.name = "unit-sweep";
  spec.topologies = {runner::lineTopology(10),
                     runner::rRestrictedLineTopology(12, 2, 0.5)};
  spec.schedulers = {SchedulerKind::kFast, SchedulerKind::kRandom,
                     SchedulerKind::kSlowAck, SchedulerKind::kAdversarial};
  spec.ks = {1, 4};
  spec.macs = {{"f4a32", testutil::stdParams(4, 32)}};
  spec.workloads = {runner::roundRobinWorkload()};
  spec.seedBegin = 1;
  spec.seedEnd = 5;
  return spec;
}

/// The same grid with the workload shape as a second real axis
/// (eager-at-t0, Poisson stream, bursty batches).
SweepSpec workloadAxisSpec() {
  SweepSpec spec = smallBmmbSpec();
  spec.name = "workload-axis-sweep";
  spec.topologies = {runner::lineTopology(10)};
  spec.schedulers = {SchedulerKind::kRandom, SchedulerKind::kAdversarial};
  spec.workloads = {runner::roundRobinWorkload(),
                    runner::poissonWorkload(25.0),
                    runner::burstyWorkload(2, 40)};
  spec.seedBegin = 1;
  spec.seedEnd = 7;  // 12 cells x 6 seeds = 72 runs
  return spec;
}

TEST(SweepSpec, ValidateRejectsIllFormedSpecs) {
  SweepSpec spec = smallBmmbSpec();
  EXPECT_NO_THROW(spec.validate());

  SweepSpec noTopo = spec;
  noTopo.topologies.clear();
  EXPECT_THROW(noTopo.validate(), Error);

  SweepSpec noWorkload = spec;
  noWorkload.workloads.clear();
  EXPECT_THROW(noWorkload.validate(), Error);

  SweepSpec emptySeeds = spec;
  emptySeeds.seedEnd = emptySeeds.seedBegin;
  EXPECT_THROW(emptySeeds.validate(), Error);

  SweepSpec badK = spec;
  badK.ks = {0};
  try {
    badK.validate();
    FAIL() << "k = 0 must be rejected";
  } catch (const Error& e) {
    // The message names the offending value.
    EXPECT_NE(std::string(e.what()).find("got 0"), std::string::npos)
        << e.what();
  }

  SweepSpec fmmbNoFactory = spec;
  fmmbNoFactory.protocol = ProtocolKind::kFmmb;
  EXPECT_THROW(fmmbNoFactory.validate(), Error);

  // A stray FMMB factory on a BMMB sweep would be silently ignored;
  // validate() rejects it instead.
  SweepSpec strayFactory = spec;
  strayFactory.fmmbParams = [](NodeId n, int) {
    return core::FmmbParams::make(n);
  };
  EXPECT_THROW(strayFactory.validate(), Error);
}

TEST(SweepSpec, EnumerationIsDenseAndOrdered) {
  const SweepSpec spec = smallBmmbSpec();
  const auto points = runner::enumerateRuns(spec);
  ASSERT_EQ(points.size(), spec.runCount());
  ASSERT_EQ(points.size(), 64u);
  std::set<std::size_t> cells;
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].runIndex, i);
    EXPECT_LT(points[i].cellIndex, spec.cellCount());
    EXPECT_GE(points[i].seed, spec.seedBegin);
    EXPECT_LT(points[i].seed, spec.seedEnd);
    cells.insert(points[i].cellIndex);
  }
  EXPECT_EQ(cells.size(), spec.cellCount());
}

TEST(SweepSpec, WorkloadAxisMultipliesTheGrid) {
  const SweepSpec spec = workloadAxisSpec();
  // 1 topology x 2 schedulers x 2 ks x 1 mac x 3 workloads.
  EXPECT_EQ(spec.cellCount(), 12u);
  const auto points = runner::enumerateRuns(spec);
  ASSERT_EQ(points.size(), spec.runCount());
  std::set<std::size_t> wls;
  for (const auto& p : points) wls.insert(p.wlIdx);
  EXPECT_EQ(wls.size(), 3u);
}

TEST(SweepRunner, SolvesEveryRunOfABenignGrid) {
  SweepRunner::Options options;
  options.threads = 2;
  const auto result = SweepRunner(options).run(smallBmmbSpec());
  ASSERT_EQ(result.cells.size(), 16u);
  EXPECT_EQ(result.errorCount(), 0u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.runs, 4u);
    EXPECT_EQ(cell.solved, 4u) << cell.topology << " " << cell.scheduler;
    EXPECT_GE(cell.minSolve, 0);
    EXPECT_LE(cell.minSolve, cell.medianSolve);
    EXPECT_LE(cell.medianSolve, cell.p95Solve);
    EXPECT_LE(cell.p95Solve, cell.maxSolve);
    EXPECT_GT(cell.stats.delivers, 0u);
    // Latency aggregates: every run completed all k messages.
    EXPECT_EQ(cell.messages, 4u * static_cast<std::uint64_t>(cell.k));
    EXPECT_LE(cell.p50Latency, cell.p95Latency);
    EXPECT_LE(cell.p95Latency, cell.maxLatency);
  }
  ASSERT_EQ(result.runs.size(), 64u);
  for (const auto& record : result.runs) {
    EXPECT_TRUE(record.result.solved);
  }
}

TEST(SweepRunner, AggregatesAreBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion of the subsystem: a >= 64-run sweep over
  // a grid with a real workload axis must aggregate bit-identically at
  // 1, 4 and 8 worker threads.  String equality of the emitted
  // CSV/JSON (which includes every aggregate field — floating-point
  // means and the per-message latency columns included) is the
  // strictest observable form of that.
  const SweepSpec spec = workloadAxisSpec();
  ASSERT_GE(spec.runCount(), 64u);
  ASSERT_GE(spec.workloads.size(), 2u);

  SweepRunner::Options one;
  one.threads = 1;
  const auto base = SweepRunner(one).run(spec);
  const std::string baseCsv = runner::cellsCsv(base);
  const std::string baseJson = runner::toJson(base);
  EXPECT_NE(baseCsv.find("p95_latency"), std::string::npos);

  for (int threads : {4, 8}) {
    SweepRunner::Options options;
    options.threads = threads;
    const auto result = SweepRunner(options).run(spec);
    EXPECT_EQ(runner::cellsCsv(result), baseCsv) << threads << " threads";
    EXPECT_EQ(runner::toJson(result), baseJson) << threads << " threads";
    // Per-run results are deterministic too, not just the aggregates.
    ASSERT_EQ(result.runs.size(), base.runs.size());
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
      EXPECT_EQ(result.runs[i].result.solveTime,
                base.runs[i].result.solveTime);
      EXPECT_EQ(result.runs[i].result.endTime, base.runs[i].result.endTime);
      EXPECT_EQ(result.runs[i].result.stats.rcvs,
                base.runs[i].result.stats.rcvs);
      EXPECT_EQ(result.runs[i].result.messages.p95Latency,
                base.runs[i].result.messages.p95Latency);
    }
  }
}

TEST(SweepRunner, MatchesCoreRunSeedSweep) {
  // One cell of the grid re-executed through the sequential core entry
  // point must reproduce the parallel runner's records exactly.
  SweepSpec spec = smallBmmbSpec();
  spec.topologies = {runner::lineTopology(10)};
  spec.schedulers = {SchedulerKind::kSlowAck};
  spec.ks = {4};

  SweepRunner::Options options;
  options.threads = 4;
  const auto result = SweepRunner(options).run(spec);
  ASSERT_EQ(result.runs.size(), spec.seedsPerCell());

  const auto topo = spec.topologies[0].make(0);
  core::RunConfig config;
  config.mac = spec.macs[0].params;
  config.scheduler = SchedulerKind::kSlowAck;
  config.recordTrace = false;
  const core::ArrivalFactory arrivals = [&spec, &topo](std::uint64_t seed) {
    return spec.workloads[0].make(4, topo.n(), seed);
  };
  const auto sequential =
      core::runSeedSweep(topo, core::bmmbProtocol(), arrivals, config,
                         spec.seedBegin, spec.seedEnd);
  ASSERT_EQ(sequential.size(), result.runs.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].solveTime, result.runs[i].result.solveTime);
    EXPECT_EQ(sequential[i].stats.bcasts, result.runs[i].result.stats.bcasts);
    EXPECT_EQ(sequential[i].messages.maxLatency,
              result.runs[i].result.messages.maxLatency);
  }
}

TEST(SweepRunner, FmmbGridRuns) {
  SweepSpec spec;
  spec.name = "fmmb-unit";
  spec.protocol = ProtocolKind::kFmmb;
  spec.topologies = {runner::greyZoneFieldTopology(16, 7.0, 1.5, 0.4)};
  spec.schedulers = {SchedulerKind::kFast, SchedulerKind::kRandom};
  spec.ks = {2};
  spec.macs = {{"enh", testutil::enhParams(4, 32)}};
  spec.workloads = {runner::roundRobinWorkload()};
  spec.seedBegin = 1;
  spec.seedEnd = 3;
  spec.fmmbParams = [](NodeId n, int) { return core::FmmbParams::make(n); };

  SweepRunner::Options options;
  options.threads = 2;
  const auto result = SweepRunner(options).run(spec);
  EXPECT_EQ(result.errorCount(), 0u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.solved, cell.runs) << cell.scheduler;
  }
}

TEST(SweepRunner, RunFailuresAreCapturedPerRun) {
  SweepSpec spec = smallBmmbSpec();
  spec.topologies = {{"boom", [](std::uint64_t seed) -> graph::DualGraph {
                        if (seed % 2 == 0) throw Error("intentional");
                        return runner::lineTopology(8).make(seed);
                      }}};
  spec.schedulers = {SchedulerKind::kFast};
  spec.ks = {1};
  spec.seedBegin = 1;
  spec.seedEnd = 5;
  const auto result = SweepRunner().run(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].runs, 4u);
  EXPECT_EQ(result.cells[0].errors, 2u);
  EXPECT_EQ(result.cells[0].solved, 2u);
  EXPECT_EQ(result.errorCount(), 2u);
}

TEST(Emitters, CsvAndJsonCarryTheGrid) {
  SweepSpec spec = smallBmmbSpec();
  spec.topologies = {runner::lineTopology(10)};
  spec.schedulers = {SchedulerKind::kFast};
  spec.ks = {2};
  spec.seedBegin = 1;
  spec.seedEnd = 3;
  const auto result = SweepRunner().run(spec);

  const std::string csv = runner::cellsCsv(result);
  EXPECT_NE(csv.find("sweep,protocol,workload,topology,"), std::string::npos);
  EXPECT_NE(csv.find("messages,mean_latency,p50_latency,p95_latency,"
                     "max_latency"),
            std::string::npos);
  EXPECT_NE(
      csv.find("unit-sweep,bmmb,round-robin,line10,fast,2,f4a32,static,none"),
      std::string::npos);

  const std::string json = runner::toJson(result);
  EXPECT_NE(json.find("\"topology\": \"line10\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"round-robin\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p95_latency\""), std::string::npos);

  std::ostringstream runsCsv;
  runner::emitRunsCsv(result, runsCsv);
  EXPECT_NE(runsCsv.str().find("run_index,cell_index,"), std::string::npos);
  EXPECT_NE(
      runsCsv.str().find("line10,fast,2,f4a32,round-robin,static,none,1,1,"),
      std::string::npos);
}

}  // namespace
}  // namespace ammb
