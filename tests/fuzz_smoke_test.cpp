// The fuzzing subsystem's smoke campaign: a fixed-seed, 200-execution
// sweep of the sampling space must pass every oracle; the sampler and
// executor must be bit-deterministic; the mutation fixtures (broken
// schedulers) must be caught and shrunk to minimal counterexamples;
// and the greedy shrinker must reach local minima on a known predicate.
#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "check/shrink.h"
#include "phys/csma.h"

namespace ammb::check {
namespace {

using core::ProtocolKind;
using core::SchedulerKind;

/// The acceptance campaign: >= 200 executions, both protocols, every
/// topology family, five scheduler kinds, eager + streaming arrivals.
FuzzSpec smokeSpec() {
  FuzzSpec spec;
  spec.masterSeed = 42;
  spec.iterations = 200;
  spec.maxN = 16;
  spec.maxFmmbN = 10;
  return spec;
}

TEST(FuzzSmoke, TwoHundredRandomExecutionsPassEveryOracle) {
  const FuzzSpec spec = smokeSpec();
  const FuzzResult result = runFuzz(spec);
  EXPECT_EQ(result.executions, 200);
  for (const Counterexample& ce : result.counterexamples) {
    ADD_FAILURE() << ce.describe();
  }
  EXPECT_EQ(result.violations, 0);

  // Coverage: the campaign exercised the whole advertised mix.
  const auto covered = [&result](const std::string& label) {
    const auto it = result.coverage.find(label);
    return it != result.coverage.end() && it->second > 0;
  };
  EXPECT_TRUE(covered("protocol:bmmb"));
  EXPECT_TRUE(covered("protocol:fmmb"));
  int topologyFamilies = 0;
  int schedulerKinds = 0;
  int streamingRuns = 0;
  for (const auto& [label, count] : result.coverage) {
    if (label.rfind("topology:", 0) == 0 && count > 0) ++topologyFamilies;
    if (label.rfind("scheduler:", 0) == 0 && count > 0) ++schedulerKinds;
    if ((label == "workload:poisson" || label == "workload:bursty" ||
         label == "workload:staggered")) {
      streamingRuns += count;
    }
  }
  EXPECT_GE(topologyFamilies, 3);
  EXPECT_GE(schedulerKinds, 3);
  EXPECT_GT(streamingRuns, 0);
}

TEST(FuzzSmoke, KernelAndCsmaRotationsOverlapAndAreAudited) {
  // The kernel rotation fires on i % 4 == 3 and the CSMA rotation on
  // i % 5 == 2, so every i ≡ 7 (mod 20) BMMB case stacks both: a
  // parallel kernel driving a realized contention MAC.  The per-case
  // provenance the --json audit records (kernel / mac labels, also
  // printed by toString) must carry both axes, and the CSMA rotation's
  // envelope-derived time budget must not be truncated by the sampled
  // cell's much smaller Fack.
  const FuzzSpec spec = smokeSpec();
  int stacked = 0;
  for (int i = 7; i < spec.iterations; i += 20) {
    const FuzzCase c = sampleCase(spec, i);
    EXPECT_TRUE(c.kernel.parallel()) << toString(c);
    if (c.protocol != ProtocolKind::kBmmb) continue;  // CSMA is BMMB-only
    ++stacked;
    EXPECT_FALSE(c.realization.abstract()) << toString(c);
    const std::string label = toString(c);
    EXPECT_NE(label.find(" kernel="), std::string::npos) << label;
    EXPECT_NE(label.find(" mac="), std::string::npos) << label;
    // The envelope budget dominates the abstract-cell budget (the
    // engine enforces the envelope's Fack, not the sampled one).
    EXPECT_GE(c.maxTime, bmmbFuzzTimeBudget(c.n, c.k, c.mac.fack)) << label;
  }
  EXPECT_GE(stacked, 1);
}

TEST(FuzzSmoke, SamplingIsSeedDeterministic) {
  const FuzzSpec spec = smokeSpec();
  for (int i = 0; i < 32; ++i) {
    const FuzzCase a = sampleCase(spec, i);
    const FuzzCase b = sampleCase(spec, i);
    EXPECT_EQ(toString(a), toString(b));
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.maxTime, b.maxTime);
  }
  // Different iterations draw different cases (no accidental stream
  // reuse collapsing the campaign to one case).
  EXPECT_NE(sampleCase(spec, 0).seed, sampleCase(spec, 1).seed);
}

TEST(FuzzSmoke, ExecutionIsReplayDeterministic) {
  const FuzzSpec spec = smokeSpec();
  for (int i = 0; i < 8; ++i) {
    const FuzzCase c = sampleCase(spec, i);
    const ExecutionOutcome a = runCase(c);
    const ExecutionOutcome b = runCase(c);
    ASSERT_EQ(a.error, b.error) << toString(c);
    EXPECT_EQ(a.traceHash, b.traceHash) << toString(c);
    EXPECT_EQ(a.result.solveTime, b.result.solveTime) << toString(c);
    EXPECT_EQ(a.result.stats.rcvs, b.result.stats.rcvs) << toString(c);
  }
}

/// Mutation campaigns restricted to BMMB (FMMB's round-boundary aborts
/// preempt the late acks the fixtures plant) on families with room for
/// an off-G' receiver.
FuzzSpec mutationSpec(SchedulerMutation mutation) {
  FuzzSpec spec;
  spec.masterSeed = 7;
  spec.iterations = 10;
  spec.protocols = {ProtocolKind::kBmmb};
  spec.topologies = {TopologyFamily::kLine, TopologyFamily::kRRestrictedLine,
                     TopologyFamily::kRandomTree};
  spec.maxN = 12;
  spec.mutation = mutation;
  return spec;
}

TEST(FuzzMutation, LateAckSchedulerIsCaughtAndShrunk) {
  const FuzzResult result = runFuzz(mutationSpec(SchedulerMutation::kLateAck));
  EXPECT_EQ(result.executions, 10);
  // Every execution acks late; every execution must be flagged.
  EXPECT_EQ(result.violations, 10);
  ASSERT_FALSE(result.counterexamples.empty());
  for (const Counterexample& ce : result.counterexamples) {
    ASSERT_TRUE(ce.error.empty()) << ce.error;
    bool ackBound = false;
    for (const std::string& v : ce.report.violations) {
      if (v.find("ack bound") != std::string::npos) ackBound = true;
    }
    EXPECT_TRUE(ackBound) << ce.describe();
    // The failure survives every simplification, so the shrinker must
    // reach the global minimum of the case space.
    EXPECT_EQ(ce.shrunk.topology, TopologyFamily::kLine) << ce.describe();
    EXPECT_EQ(ce.shrunk.workload, WorkloadShape::kAllAtZero) << ce.describe();
    EXPECT_EQ(ce.shrunk.n, 2) << ce.describe();
    EXPECT_EQ(ce.shrunk.k, 1) << ce.describe();
    EXPECT_LE(ce.shrunk.n, ce.original.n);
    EXPECT_LE(ce.shrunk.k, ce.original.k);
    EXPECT_GT(ce.shrinkWins, 0) << ce.describe();
  }
}

TEST(FuzzMutation, OffGPrimeSchedulerIsCaughtAndShrunk) {
  const FuzzResult result =
      runFuzz(mutationSpec(SchedulerMutation::kOffGPrime));
  EXPECT_EQ(result.executions, 10);
  EXPECT_GE(result.violations, 1);
  ASSERT_FALSE(result.counterexamples.empty());
  for (const Counterexample& ce : result.counterexamples) {
    ASSERT_TRUE(ce.error.empty()) << ce.error;
    bool offGPrime = false;
    for (const std::string& v : ce.report.violations) {
      if (v.find("outside G'") != std::string::npos) offGPrime = true;
    }
    EXPECT_TRUE(offGPrime) << ce.describe();
    // A 2-node line has no off-G' receiver, so the minimum is n = 3.
    EXPECT_LE(ce.shrunk.n, ce.original.n);
    EXPECT_GE(ce.shrunk.n, 3) << ce.describe();
    EXPECT_EQ(ce.shrunk.k, 1) << ce.describe();
  }
}

TEST(FuzzMutation, DropOnRecoveryQuiescenceIsCaught) {
  // The negative fixture for the re-scoped dynamic liveness oracle:
  // the sampler pins a stranding crash schedule with the retransmit
  // reaction armed, and the mutant scheduler swallows the epoch
  // notifications an honest engine would deliver.  The protocol never
  // re-arms, the run drains unsolved with the final epoch connected,
  // and the oracle must flag it.
  const FuzzResult result =
      runFuzz(mutationSpec(SchedulerMutation::kDropOnRecovery));
  EXPECT_EQ(result.executions, 10);
  EXPECT_GE(result.violations, 1);
  ASSERT_FALSE(result.counterexamples.empty());
  for (const Counterexample& ce : result.counterexamples) {
    ASSERT_TRUE(ce.error.empty()) << ce.error;
    bool liveness = false;
    for (const std::string& v : ce.report.violations) {
      if (v.find("liveness") != std::string::npos) liveness = true;
    }
    EXPECT_TRUE(liveness) << ce.describe();
    EXPECT_LE(ce.shrunk.n, ce.original.n);
  }
}

TEST(Shrinker, ReachesTheLocalMinimumOfAKnownPredicate) {
  FuzzCase failing;
  failing.topology = TopologyFamily::kGreyZoneField;
  failing.workload = WorkloadShape::kPoisson;
  failing.n = 16;
  failing.k = 6;
  failing.maxTime = 100'000;
  // "Fails" whenever n >= 5 and k >= 2, independent of everything else.
  const FailPredicate pred = [](const FuzzCase& c) {
    return c.n >= 5 && c.k >= 2;
  };
  const ShrinkOutcome out = shrinkCase(failing, pred, 256);
  EXPECT_EQ(out.best.n, 5);
  EXPECT_EQ(out.best.k, 2);
  EXPECT_EQ(out.best.topology, TopologyFamily::kLine);
  EXPECT_EQ(out.best.workload, WorkloadShape::kAllAtZero);
  EXPECT_GT(out.wins, 0);
  EXPECT_LE(out.attempts, 256);
}

TEST(Shrinker, BudgetBoundsReExecutions) {
  FuzzCase failing;
  failing.n = 1024;
  failing.k = 64;
  const FailPredicate pred = [](const FuzzCase&) { return true; };
  const ShrinkOutcome out = shrinkCase(failing, pred, 3);
  EXPECT_LE(out.attempts, 3);
  EXPECT_LE(out.best.n, failing.n);
}

TEST(FuzzSpecValidation, RejectsIllFormedSpecs) {
  FuzzSpec empty;
  empty.schedulers.clear();
  EXPECT_THROW(empty.validate(), Error);

  FuzzSpec lowerBound;
  lowerBound.schedulers = {SchedulerKind::kLowerBound};
  EXPECT_THROW(lowerBound.validate(), Error);

  FuzzSpec badN;
  badN.minN = 1;
  EXPECT_THROW(badN.validate(), Error);

  FuzzSpec zeroIters;
  zeroIters.iterations = 0;
  EXPECT_THROW(zeroIters.validate(), Error);
}

}  // namespace
}  // namespace ammb::check
