// The physical MAC realization layer, bottom to top: the CsmaParams /
// MacRealization label codec, the analytic plan envelope, seed
// determinism of the contention draws, parallel-kernel bit-identity on
// CSMA runs, the measured-bounds feedback loop (checkExecution green
// under the *fitted* Fprog/Fack), the sweep/record plumbing, and a
// negative test where an impossible contention window makes the
// realized Fack blow past bounds fitted from a sane configuration.
#include <gtest/gtest.h>

#include <sstream>

#include "check/fuzzer.h"
#include "check/golden.h"
#include "check/oracles.h"
#include "core/experiment.h"
#include "graph/generators.h"
#include "mac/realization.h"
#include "mac/trace_checker.h"
#include "phys/csma.h"
#include "phys/measurement.h"
#include "runner/emit.h"
#include "runner/spec_io.h"
#include "runner/sweep_runner.h"
#include "test_util.h"

namespace ammb {
namespace {

using check::ExecutionOutcome;
using check::FuzzCase;
using check::GoldenCase;
using check::SchedulerMutation;
using mac::CsmaParams;
using mac::MacRealization;

namespace gen = graph::gen;

// --- label codec -------------------------------------------------------------

TEST(MacRealizationUnit, LabelsAndRoundTrips) {
  EXPECT_EQ(MacRealization::abstractLayer().label(), "abstract");
  EXPECT_EQ(MacRealization::csmaWith(CsmaParams{}).label(), "csma");

  CsmaParams custom;
  custom.slot = 2;
  custom.cwMin = 4;
  custom.cwMax = 32;
  custom.maxRetries = 5;
  custom.pCapture = 0.25;
  EXPECT_EQ(MacRealization::csmaWith(custom).label(), "csma:2,4,32,5,0.25");

  for (const std::string label :
       {"abstract", "csma", "csma:2,4,32,5,0.25", "csma:1,2,64,4,0.3"}) {
    EXPECT_EQ(MacRealization::fromLabel(label).label(), label) << label;
  }
  // The explicit default vector is the same layer as the shorthand and
  // canonicalizes back to it.
  EXPECT_EQ(MacRealization::fromLabel("csma"),
            MacRealization::fromLabel("csma:1,2,64,8,0.3"));
  EXPECT_EQ(MacRealization::fromLabel("csma:1,2,64,8,0.3").label(), "csma");

  EXPECT_THROW(MacRealization::fromLabel(""), Error);
  EXPECT_THROW(MacRealization::fromLabel("Abstract"), Error);
  EXPECT_THROW(MacRealization::fromLabel("csma:"), Error);
  EXPECT_THROW(MacRealization::fromLabel("csma:1,2,64"), Error);
  EXPECT_THROW(MacRealization::fromLabel("csma:1,2,64,8,0.3,extra"), Error);
  EXPECT_THROW(MacRealization::fromLabel("tdma"), Error);
  // Labels that parse but violate CsmaParams::validate() must throw too.
  EXPECT_THROW(MacRealization::fromLabel("csma:0,2,64,8,0.3"), Error);
  EXPECT_THROW(MacRealization::fromLabel("csma:1,8,4,8,0.3"), Error);
  EXPECT_THROW(MacRealization::fromLabel("csma:1,2,64,8,1.5"), Error);
}

// --- analytic envelope -------------------------------------------------------

TEST(CsmaEnvelopeUnit, AcquisitionEnvelopeIsTheWindowSum) {
  CsmaParams p;
  p.slot = 2;
  p.cwMin = 2;
  p.cwMax = 16;
  p.maxRetries = 4;
  // Windows of attempts 0..4: 2, 4, 8, 16, 16 -> 46 slots.
  EXPECT_EQ(phys::csmaAcquisitionEnvelope(p), 46 * 2);
}

TEST(CsmaEnvelopeUnit, EnvelopeParamsDominateEveryPlan) {
  const CsmaParams csma;  // defaults
  const mac::MacParams cell = testutil::stdParams(4, 32);
  const mac::MacParams envelope = phys::csmaEnvelopeParams(csma, cell);
  envelope.validate();
  EXPECT_GE(envelope.fack, phys::csmaAcquisitionEnvelope(csma));
  EXPECT_GE(envelope.fack, cell.fack);
  EXPECT_GE(envelope.fprog, cell.fprog);
  EXPECT_GE(envelope.fack, envelope.fprog);
  // Non-timing knobs pass through untouched.
  EXPECT_EQ(envelope.epsAbort, cell.epsAbort);
  EXPECT_EQ(envelope.msgCapacity, cell.msgCapacity);
  EXPECT_EQ(envelope.variant, cell.variant);

  // A cell that already dominates the envelope is kept verbatim.
  mac::MacParams huge = testutil::stdParams(100'000, 1'000'000);
  const mac::MacParams kept = phys::csmaEnvelopeParams(csma, huge);
  EXPECT_EQ(kept.fack, huge.fack);
  EXPECT_EQ(kept.fprog, huge.fprog);
}

// --- execution helpers -------------------------------------------------------

FuzzCase csmaCase(std::uint64_t seed, const CsmaParams& csma) {
  FuzzCase c;
  c.topology = check::TopologyFamily::kLine;
  c.n = 8;
  c.k = 4;
  c.workload = check::WorkloadShape::kAllAtZero;
  c.mac = testutil::stdParams(4, 32);
  c.maxTime = 1'000'000;
  c.seed = seed;
  c.realization = MacRealization::csmaWith(csma);
  return c;
}

// --- seed determinism --------------------------------------------------------

TEST(PhysScheduler, ContentionDrawsAreSeedDeterministic) {
  for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
    const FuzzCase c = csmaCase(seed, CsmaParams{});
    const ExecutionOutcome first =
        check::runCase(c, SchedulerMutation::kNone, true);
    const ExecutionOutcome again =
        check::runCase(c, SchedulerMutation::kNone, true);
    ASSERT_TRUE(first.error.empty()) << first.error;
    ASSERT_FALSE(first.canonicalTrace.empty());
    EXPECT_EQ(first.canonicalTrace, again.canonicalTrace) << seed;
    EXPECT_EQ(first.traceHash, again.traceHash) << seed;
    EXPECT_TRUE(first.report.ok) << first.report.summary();
    EXPECT_TRUE(first.result.solved) << seed;
  }
  // Different seeds draw different backoffs: the traces must diverge.
  const ExecutionOutcome a = check::runCase(csmaCase(7, CsmaParams{}),
                                            SchedulerMutation::kNone, true);
  const ExecutionOutcome b = check::runCase(csmaCase(8, CsmaParams{}),
                                            SchedulerMutation::kNone, true);
  EXPECT_NE(a.canonicalTrace, b.canonicalTrace);
}

// --- parallel-kernel bit-identity -------------------------------------------

TEST(PhysScheduler, CsmaGoldenCasesBitIdenticalAtOneFourEightWorkers) {
  int covered = 0;
  for (const GoldenCase& gc : check::goldenCaseSuite()) {
    if (gc.fuzzCase.realization.abstract()) continue;
    ++covered;
    const ExecutionOutcome serial = check::runCase(
        gc.fuzzCase, SchedulerMutation::kNone, /*keepCanonicalTrace=*/true);
    ASSERT_TRUE(serial.error.empty()) << gc.name << ": " << serial.error;
    for (const int workers : {1, 4, 8}) {
      FuzzCase c = gc.fuzzCase;
      c.kernel = sim::KernelSpec::parallelWith(workers);
      const ExecutionOutcome parallel =
          check::runCase(c, SchedulerMutation::kNone,
                         /*keepCanonicalTrace=*/true);
      ASSERT_TRUE(parallel.error.empty())
          << gc.name << ": " << parallel.error;
      EXPECT_EQ(parallel.canonicalTrace, serial.canonicalTrace)
          << gc.name << " @ " << workers << " workers";
      EXPECT_EQ(parallel.traceHash, serial.traceHash) << gc.name;
      EXPECT_TRUE(parallel.report.ok)
          << gc.name << ": " << parallel.report.summary();
    }
  }
  // The suite must actually pin the CSMA layer (csma-line and
  // csma-grey-field).
  EXPECT_EQ(covered, 2);
}

// --- measured-bounds feedback loop ------------------------------------------

TEST(MacMeasurement, ChecksGreenUnderFittedBoundsAndBelowEnvelope) {
  const CsmaParams csma;
  const graph::DualGraph topology = gen::identityDual(gen::line(10));
  std::unique_ptr<core::ArrivalProcess> arrivals =
      core::streamWorkload(core::workloadRoundRobin(5, topology.n()));
  const core::MmbWorkload workload = core::materializeWorkload(*arrivals);

  core::RunConfig config;
  config.mac = testutil::stdParams(4, 32);
  config.realization = MacRealization::csmaWith(csma);
  config.seed = 21;
  config.recordTrace = true;

  const mac::MacParams envelope = core::effectiveMacParams(config);
  EXPECT_GT(envelope.fack, config.mac.fack);

  core::Experiment experiment(topology, core::bmmbProtocol(), *arrivals,
                              config);
  const core::RunResult result = experiment.run();
  EXPECT_TRUE(result.solved);
  const sim::Trace& trace = experiment.engine().trace();

  const phys::RealizedBounds realized =
      phys::measureRealized(experiment.view(), envelope, trace,
                            result.endTime);
  ASSERT_TRUE(realized.measured());
  EXPECT_GT(realized.ackSamples, 0u);
  EXPECT_GT(realized.progSamples, 0u);
  EXPECT_LE(realized.fackP50, realized.fackP95);
  EXPECT_LE(realized.fackP95, realized.fackMax);
  EXPECT_LE(realized.fprogP50, realized.fprogP95);
  EXPECT_LE(realized.fprogP95, realized.fprogMax);
  EXPECT_GE(realized.fittedFack, realized.fackMax);

  // The realized constants sit far inside the analytic worst case —
  // deriving them is the point of the layer.
  EXPECT_LE(realized.fittedFack, envelope.fack);
  EXPECT_LE(realized.fittedFprog, envelope.fprog);

  // The feedback loop: the abstract axioms hold under the *measured*
  // constants, via checkTrace and the full oracle suite alike.
  const mac::MacParams fitted = phys::fittedParams(realized, envelope);
  EXPECT_EQ(fitted.fack, realized.fittedFack);
  EXPECT_EQ(fitted.fprog, realized.fittedFprog);
  const mac::CheckResult check =
      mac::checkTrace(experiment.view(), fitted, trace, result.endTime);
  EXPECT_TRUE(check.ok) << check.summary();
  const check::OracleReport report =
      check::checkExecution(experiment.view(), core::bmmbProtocol(), fitted,
                            workload, trace, result);
  EXPECT_TRUE(report.ok) << report.summary();

  // Minimality of the fitted Fprog: one tick less must be rejected
  // (otherwise the bisection surrendered too high).
  if (fitted.fprog > 1) {
    mac::MacParams tighter = fitted;
    tighter.fprog = fitted.fprog - 1;
    const mac::CheckResult rejected =
        mac::checkTrace(experiment.view(), tighter, trace, result.endTime);
    EXPECT_FALSE(rejected.ok);
  }
}

TEST(MacMeasurement, ImpossibleWindowBlowsPastSanelyFittedBounds) {
  // Fit bounds from a sane contention configuration...
  const graph::DualGraph topology = gen::identityDual(gen::line(8));
  const auto runWith = [&topology](const CsmaParams& csma,
                                   core::RunConfig& configOut)
      -> std::pair<phys::RealizedBounds, mac::MacParams> {
    std::unique_ptr<core::ArrivalProcess> arrivals =
        core::streamWorkload(core::workloadAllAtNode(4, 0));
    configOut.mac = testutil::stdParams(4, 32);
    configOut.realization = MacRealization::csmaWith(csma);
    configOut.seed = 23;
    configOut.recordTrace = true;
    core::Experiment experiment(topology, core::bmmbProtocol(), *arrivals,
                                configOut);
    const core::RunResult result = experiment.run();
    const mac::MacParams envelope = core::effectiveMacParams(configOut);
    return {phys::measureRealized(experiment.view(), envelope,
                                  experiment.engine().trace(),
                                  result.endTime),
            envelope};
  };

  core::RunConfig saneConfig;
  const auto [sane, saneEnvelope] = runWith(CsmaParams{}, saneConfig);
  ASSERT_TRUE(sane.measured());
  const mac::MacParams saneFitted = phys::fittedParams(sane, saneEnvelope);

  // ...then run under an impossible window: every backoff draw spans
  // hundreds of slots, so acquisition alone dwarfs the sane layer's
  // realized Fack.
  CsmaParams impossible;
  impossible.cwMin = 512;
  impossible.cwMax = 4096;
  impossible.maxRetries = 2;
  core::RunConfig impossibleConfig;
  const auto [wild, wildEnvelope] = runWith(impossible, impossibleConfig);
  ASSERT_TRUE(wild.measured());
  EXPECT_GT(wild.fackMax, saneFitted.fack);
  EXPECT_GT(wild.fittedFack, saneFitted.fack);

  // The sane fitted bounds must NOT absolve the impossible-window run:
  // re-running the checker on its trace under them reports ack-bound
  // violations.
  std::unique_ptr<core::ArrivalProcess> arrivals =
      core::streamWorkload(core::workloadAllAtNode(4, 0));
  core::Experiment experiment(topology, core::bmmbProtocol(), *arrivals,
                              impossibleConfig);
  const core::RunResult result = experiment.run();
  const mac::CheckResult check =
      mac::checkTrace(experiment.view(), saneFitted,
                      experiment.engine().trace(), result.endTime);
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.records.empty());
}

// --- sweep / spec / record plumbing -----------------------------------------

TEST(SpecIoMac, MacKeyRoundTripsAndDefaultsKeepFingerprints) {
  const std::string base = R"({
    "name": "phys-spec",
    "protocol": "bmmb",
    "topologies": [{"kind": "line", "n": 8}],
    "schedulers": ["fast"],
    "ks": [2],
    "macs": [{"fack": 32, "fprog": 4}],
    "workloads": [{"kind": "round-robin"}],
    "seed_begin": 1, "seed_end": 2)";
  const runner::SpecDoc abstractDoc = runner::parseSpec(base + "\n}");
  EXPECT_TRUE(abstractDoc.realization.abstract());
  // Omitted key -> abstract -> not serialized: the canonical form (and
  // hence every pre-existing spec fingerprint) is unchanged.
  EXPECT_EQ(runner::writeSpec(abstractDoc).find("\"mac\":"),
            std::string::npos);

  const runner::SpecDoc csmaDoc =
      runner::parseSpec(base + ",\n  \"mac\": \"csma:2,4,32,5,0.25\"\n}");
  EXPECT_EQ(csmaDoc.realization.label(), "csma:2,4,32,5,0.25");
  const std::string written = runner::writeSpec(csmaDoc);
  EXPECT_NE(written.find("\"mac\": \"csma:2,4,32,5,0.25\""),
            std::string::npos);
  EXPECT_EQ(runner::parseSpec(written).realization, csmaDoc.realization);
  // The realization changes results, so it must change the fingerprint.
  EXPECT_NE(runner::specFingerprint(abstractDoc),
            runner::specFingerprint(csmaDoc));

  EXPECT_THROW(runner::parseSpec(base + ",\n  \"mac\": \"tdma\"\n}"), Error);
}

runner::SweepSpec csmaSweep() {
  runner::SweepSpec spec;
  spec.name = "phys-sweep";
  spec.topologies = {runner::lineTopology(8)};
  spec.schedulers = {core::SchedulerKind::kFast};
  spec.ks = {3};
  spec.macs = {{"f4a32", testutil::stdParams(4, 32)}};
  spec.workloads = {runner::roundRobinWorkload()};
  spec.seedBegin = 1;
  spec.seedEnd = 3;
  spec.check = runner::CheckMode::kMac;
  spec.realization = MacRealization::csmaWith(CsmaParams{});
  return spec;
}

TEST(SweepPhys, RecordsCarryRealizedBoundsThroughAggregation) {
  const runner::SweepSpec spec = csmaSweep();
  const runner::SweepResult result = runner::SweepRunner().run(spec);
  EXPECT_EQ(result.realization, "csma");
  ASSERT_EQ(result.runs.size(), 2u);
  for (const runner::RunRecord& record : result.runs) {
    ASSERT_TRUE(record.error.empty()) << record.error;
    EXPECT_EQ(record.realization, "csma");
    EXPECT_TRUE(record.checked);
    EXPECT_TRUE(record.checkViolations.empty())
        << record.checkViolations.front();
    EXPECT_TRUE(record.realized.measured());
    EXPECT_GT(record.realized.fittedFack, 0);
  }
  ASSERT_EQ(result.cells.size(), 1u);
  const runner::CellAggregate& cell = result.cells.front();
  EXPECT_EQ(cell.measuredRuns, 2u);
  EXPECT_TRUE(cell.realized.measured());
  // Worst-case fold: the cell's max is one of the runs' maxima.
  EXPECT_EQ(cell.realized.fackMax,
            std::max(result.runs[0].realized.fackMax,
                     result.runs[1].realized.fackMax));

  // The realized columns reach both CSV emitters and the cell JSON.
  EXPECT_NE(runner::cellsCsv(result).find("fitted_fack"), std::string::npos);
  EXPECT_NE(runner::runsCsv(result).find(",csma,"), std::string::npos);
  const std::string json = runner::toJson(result);
  EXPECT_NE(json.find("\"realization\": \"csma\""), std::string::npos);
  EXPECT_NE(json.find("\"measured_runs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"fitted_fack\": "), std::string::npos);
}

TEST(SweepPhys, RecordJsonRoundTripsRealizedBounds) {
  const runner::SweepSpec spec = csmaSweep();
  const runner::RunRecord record =
      runner::executeRun(spec, runner::runPointFor(spec, 0));
  ASSERT_TRUE(record.error.empty()) << record.error;
  ASSERT_TRUE(record.realized.measured());

  const runner::RunRecord back = runner::recordFromJson(
      runner::recordToJson(record), "phys-record");
  EXPECT_EQ(back.realization, record.realization);
  EXPECT_EQ(back.realized, record.realized);
  EXPECT_EQ(back.traceHash, record.traceHash);

  // Abstract records keep their pre-phys serialization: no
  // mac_realization / realized keys at all.
  runner::SweepSpec abstractSpec = spec;
  abstractSpec.realization = MacRealization::abstractLayer();
  const runner::RunRecord abstractRecord =
      runner::executeRun(abstractSpec, runner::runPointFor(abstractSpec, 0));
  std::ostringstream dumped;
  runner::json::dump(runner::recordToJson(abstractRecord), dumped);
  EXPECT_EQ(dumped.str().find("mac_realization"), std::string::npos);
  EXPECT_EQ(dumped.str().find("realized"), std::string::npos);
}

// The cross-layer acceptance bar: BMMB and FMMB run unchanged over the
// contention layer, and the full protocol oracles stay green.
TEST(SweepPhys, FmmbRunsUnchangedOverCsma) {
  FuzzCase c;
  c.protocol = core::ProtocolKind::kFmmb;
  c.topology = check::TopologyFamily::kGreyZoneField;
  c.n = 10;
  c.k = 2;
  c.workload = check::WorkloadShape::kAllAtZero;
  c.mac = testutil::enhParams(4, 32);
  c.seed = 16;
  c.realization = MacRealization::csmaWith(CsmaParams{});
  // Lock-step rounds run on the envelope's (Fprog + 1) grid; budget
  // accordingly.
  const mac::MacParams envelope =
      phys::csmaEnvelopeParams(CsmaParams{}, c.mac);
  c.maxTime = 4 * core::fmmbBoundEnvelope(
                      c.n, c.k, core::FmmbParams::make(c.n, c.greyC),
                      envelope);
  const ExecutionOutcome outcome =
      check::runCase(c, SchedulerMutation::kNone, false);
  ASSERT_TRUE(outcome.error.empty()) << outcome.error;
  EXPECT_TRUE(outcome.report.ok) << outcome.report.summary();
  EXPECT_TRUE(outcome.result.solved);
}

}  // namespace
}  // namespace ammb
