// Unit tests for the offline model checker: every axiom's violation is
// detected on hand-built traces, and real engine traces pass.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mac/trace_checker.h"
#include "test_util.h"

namespace ammb::mac {
namespace {

namespace gen = graph::gen;
using sim::Trace;
using sim::TraceKind;
using testutil::stdParams;

// Convention for hand-built traces: a line 0-1-2 with G' = G, fprog 4,
// fack 32 unless stated otherwise.

Trace validSingleHop() {
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({4, TraceKind::kRcv, 1, 0, kNoMsg});
  t.add({32, TraceKind::kAck, 0, 0, kNoMsg});
  return t;
}

TEST(TraceChecker, AcceptsValidExecution) {
  const auto topo = gen::identityDual(gen::line(2));
  const auto res = checkTrace(topo, stdParams(), validSingleHop());
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST(TraceChecker, DetectsDoubleBcast) {
  const auto topo = gen::identityDual(gen::line(2));
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({1, TraceKind::kBcast, 0, 1, kNoMsg});  // no intervening ack
  const auto res = checkTrace(topo, stdParams(), t);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.summary().find("well-formedness"), std::string::npos);
}

TEST(TraceChecker, DetectsDeliveryOutsideGPrime) {
  const auto topo = gen::identityDual(gen::line(3));
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({1, TraceKind::kRcv, 2, 0, kNoMsg});  // node 2 is 2 hops away
  t.add({2, TraceKind::kRcv, 1, 0, kNoMsg});
  t.add({3, TraceKind::kAck, 0, 0, kNoMsg});
  EXPECT_FALSE(checkTrace(topo, stdParams(), t).ok);
}

TEST(TraceChecker, DetectsDuplicateDelivery) {
  const auto topo = gen::identityDual(gen::line(2));
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({1, TraceKind::kRcv, 1, 0, kNoMsg});
  t.add({2, TraceKind::kRcv, 1, 0, kNoMsg});
  t.add({3, TraceKind::kAck, 0, 0, kNoMsg});
  EXPECT_FALSE(checkTrace(topo, stdParams(), t).ok);
}

TEST(TraceChecker, DetectsRcvAfterAck) {
  Rng rng(1);
  const auto topo = gen::withArbitraryNoise(gen::line(3), 1, rng);
  // Find the unreliable pair so the extra delivery is inside G'.
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({1, TraceKind::kRcv, 1, 0, kNoMsg});
  t.add({2, TraceKind::kAck, 0, 0, kNoMsg});
  t.add({3, TraceKind::kRcv, 1, 0, kNoMsg});  // after ack AND duplicate
  EXPECT_FALSE(checkTrace(topo, stdParams(), t).ok);
}

TEST(TraceChecker, DetectsAckBeforeGNeighborReceives) {
  const auto topo = gen::identityDual(gen::star(3));
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({1, TraceKind::kRcv, 1, 0, kNoMsg});
  t.add({2, TraceKind::kAck, 0, 0, kNoMsg});  // node 2 never received
  EXPECT_FALSE(checkTrace(topo, stdParams(), t).ok);
}

TEST(TraceChecker, DetectsAckBoundViolation) {
  const auto topo = gen::identityDual(gen::line(2));
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({4, TraceKind::kRcv, 1, 0, kNoMsg});
  t.add({33, TraceKind::kAck, 0, 0, kNoMsg});  // fack = 32
  EXPECT_FALSE(checkTrace(topo, stdParams(), t).ok);
}

TEST(TraceChecker, DetectsMissingTermination) {
  const auto topo = gen::identityDual(gen::line(2));
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({4, TraceKind::kRcv, 1, 0, kNoMsg});
  t.add({100, TraceKind::kWake, 1, kNoInstance, kNoMsg});  // horizon marker
  EXPECT_FALSE(checkTrace(topo, stdParams(), t).ok);
  // Within the Fack budget the open instance is fine.
  Trace young;
  young.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  young.add({4, TraceKind::kRcv, 1, 0, kNoMsg});
  EXPECT_TRUE(checkTrace(topo, stdParams(), young, /*horizon=*/10).ok);
}

TEST(TraceChecker, DetectsDoubleTermination) {
  const auto topo = gen::identityDual(gen::line(2));
  Trace t = validSingleHop();
  t.add({32, TraceKind::kAck, 0, 0, kNoMsg});
  EXPECT_FALSE(checkTrace(topo, stdParams(), t).ok);
}

TEST(TraceChecker, DetectsProgressViolation) {
  const auto topo = gen::identityDual(gen::line(2));
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({32, TraceKind::kRcv, 1, 0, kNoMsg});  // first rcv at fack
  t.add({32, TraceKind::kAck, 0, 0, kNoMsg});
  // Window [0, 5] has a broadcasting G-neighbor and no rcv: violation.
  const auto res = checkTrace(topo, stdParams(), t);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.summary().find("progress"), std::string::npos);
}

TEST(TraceChecker, ProgressSatisfiedByEarlyRcvFromLiveInstance) {
  const auto topo = gen::identityDual(gen::line(2));
  // One rcv at fprog covers the rest of the instance's lifetime: the
  // delivering instance stays unterminated, so every later window still
  // contains a contending rcv "by its end".
  const auto res = checkTrace(topo, stdParams(), validSingleHop());
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST(TraceChecker, ProgressCoverageEndsWhenCoveringInstanceTerminates) {
  Rng rng(1);
  // Line 0-1 plus a G'-only edge between 2 and 1: instance from node 2
  // covers node 1's obligations only while it lives.
  graph::Graph g(3);
  g.addEdge(0, 1);
  g.finalize();
  graph::Graph gp(3);
  gp.addEdge(0, 1);
  gp.addEdge(1, 2);
  gp.finalize();
  const graph::DualGraph topo(std::move(g), std::move(gp));

  auto params = stdParams(4, 64);
  Trace t;
  t.add({0, TraceKind::kBcast, 2, 1, kNoMsg});   // junk instance from 2
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});   // real instance from 0
  t.add({2, TraceKind::kRcv, 1, 1, kNoMsg});     // junk delivered early
  t.add({10, TraceKind::kAck, 2, 1, kNoMsg});    // junk terminates at 10
  t.add({64, TraceKind::kRcv, 1, 0, kNoMsg});    // real delivery at fack
  t.add({64, TraceKind::kAck, 0, 0, kNoMsg});
  // Coverage from the junk rcv ends at t=9; windows starting in
  // [10, 64-4-1] are uncovered: violation.
  const auto res = checkTrace(topo, params, t);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.summary().find("progress"), std::string::npos);

  // A second junk instance covering the tail fixes it.
  Trace t2;
  t2.add({0, TraceKind::kBcast, 2, 1, kNoMsg});
  t2.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t2.add({2, TraceKind::kRcv, 1, 1, kNoMsg});
  t2.add({10, TraceKind::kAck, 2, 1, kNoMsg});
  t2.add({10, TraceKind::kBcast, 2, 2, kNoMsg});
  t2.add({12, TraceKind::kRcv, 1, 2, kNoMsg});
  t2.add({64, TraceKind::kRcv, 1, 0, kNoMsg});
  t2.add({64, TraceKind::kAck, 0, 0, kNoMsg});
  t2.add({74, TraceKind::kAck, 2, 2, kNoMsg});
  const auto res2 = checkTrace(topo, params, t2);
  EXPECT_TRUE(res2.ok) << res2.summary();
}

TEST(TraceChecker, AbortAllowsGracePeriodDeliveries) {
  const auto topo = gen::identityDual(gen::line(2));
  auto params = stdParams();
  params.epsAbort = 2;
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({1, TraceKind::kAbort, 0, 0, kNoMsg});
  t.add({3, TraceKind::kRcv, 1, 0, kNoMsg});  // within epsAbort
  EXPECT_TRUE(checkTrace(topo, params, t).ok);
  Trace late;
  late.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  late.add({1, TraceKind::kAbort, 0, 0, kNoMsg});
  late.add({4, TraceKind::kRcv, 1, 0, kNoMsg});  // beyond epsAbort
  EXPECT_FALSE(checkTrace(topo, params, late).ok);
}

TEST(TraceChecker, AbortedInstanceNeedsNoAck) {
  const auto topo = gen::identityDual(gen::line(2));
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({1, TraceKind::kAbort, 0, 0, kNoMsg});
  EXPECT_TRUE(checkTrace(topo, stdParams(), t, /*horizon=*/100).ok);
}

TEST(TraceChecker, RcvForUnknownInstance) {
  const auto topo = gen::identityDual(gen::line(2));
  Trace t;
  t.add({1, TraceKind::kRcv, 1, 42, kNoMsg});
  EXPECT_FALSE(checkTrace(topo, stdParams(), t).ok);
}

TEST(TraceChecker, RcvExactlyAtTheEpsAbortBoundary) {
  // The grace period is inclusive: a receive at termAt + epsAbort is
  // the last legal instant, one tick later is the first illegal one.
  const auto topo = gen::identityDual(gen::line(2));
  auto params = stdParams();
  params.epsAbort = 3;
  Trace boundary;
  boundary.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  boundary.add({2, TraceKind::kAbort, 0, 0, kNoMsg});
  boundary.add({5, TraceKind::kRcv, 1, 0, kNoMsg});  // t = termAt + epsAbort
  const auto ok = checkTrace(topo, params, boundary);
  EXPECT_TRUE(ok.ok) << ok.summary();

  Trace past;
  past.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  past.add({2, TraceKind::kAbort, 0, 0, kNoMsg});
  past.add({6, TraceKind::kRcv, 1, 0, kNoMsg});  // one tick beyond
  const auto bad = checkTrace(topo, params, past);
  ASSERT_FALSE(bad.ok);
  ASSERT_EQ(bad.records.size(), 1u);
  EXPECT_EQ(bad.records[0].axiom, "rcv-after-abort");
  EXPECT_EQ(bad.records[0].instance, 0);
  EXPECT_EQ(bad.records[0].node, 1);
  EXPECT_EQ(bad.records[0].time, 6);
}

TEST(TraceChecker, InFlightInstanceWithExpiredFackBudgetAtHorizon) {
  const auto topo = gen::identityDual(gen::line(2));
  const auto params = stdParams(4, 32);
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({4, TraceKind::kRcv, 1, 0, kNoMsg});  // progress satisfied

  // Budget expires exactly at the horizon: still legal (the ack may
  // land on the closing tick of the observation window).
  EXPECT_TRUE(checkTrace(topo, params, t, /*horizon=*/32).ok);

  // One tick past the budget: the instance can no longer terminate in
  // time — a termination violation with the expiry timestamp.
  const auto res = checkTrace(topo, params, t, /*horizon=*/33);
  ASSERT_FALSE(res.ok);
  ASSERT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.records[0].axiom, "termination");
  EXPECT_EQ(res.records[0].instance, 0);
  EXPECT_EQ(res.records[0].node, 0);
  EXPECT_EQ(res.records[0].time, 32);  // bcastAt + Fack
  EXPECT_NE(res.summary().find("never terminated"), std::string::npos);
}

TEST(TraceChecker, NeverHorizonOnAnEmptyTrace) {
  // kTimeNever horizon + no records: the window collapses to t = 0 and
  // the verdict is a clean pass, not an out-of-range access.
  const auto topo = gen::identityDual(gen::line(3));
  const Trace empty;
  const auto res = checkTrace(topo, stdParams(), empty, kTimeNever);
  EXPECT_TRUE(res.ok);
  EXPECT_TRUE(res.violations.empty());
  EXPECT_TRUE(res.records.empty());
  EXPECT_EQ(res.summary(), "ok");
}

TEST(TraceChecker, SummaryIsDefensiveWithoutRecordedViolations) {
  // A result marked failed with no recorded violations (e.g. built by
  // an aggregator) must not touch violations.front().
  CheckResult result;
  result.ok = false;
  EXPECT_EQ(result.summary(), "no violations recorded");
  result.violations.push_back("boom");
  EXPECT_EQ(result.summary(), "boom");
  result.ok = true;
  EXPECT_EQ(result.summary(), "ok");
}

TEST(TraceChecker, StructuredRecordsParallelTheMessages) {
  const auto topo = gen::identityDual(gen::line(3));
  Trace t;
  t.add({0, TraceKind::kBcast, 0, 0, kNoMsg});
  t.add({1, TraceKind::kRcv, 2, 0, kNoMsg});  // outside G'
  t.add({2, TraceKind::kRcv, 1, 0, kNoMsg});
  t.add({40, TraceKind::kAck, 0, 0, kNoMsg});  // past Fack = 32
  const auto res = checkTrace(topo, stdParams(), t);
  ASSERT_FALSE(res.ok);
  ASSERT_EQ(res.records.size(), res.violations.size());
  bool sawOffGPrime = false;
  bool sawAckBound = false;
  for (std::size_t i = 0; i < res.records.size(); ++i) {
    EXPECT_EQ(res.records[i].detail, res.violations[i]);
    if (res.records[i].axiom == "rcv-off-gprime") {
      sawOffGPrime = true;
      EXPECT_EQ(res.records[i].node, 2);
      EXPECT_EQ(res.records[i].time, 1);
    }
    if (res.records[i].axiom == "ack-bound") {
      sawAckBound = true;
      EXPECT_EQ(res.records[i].node, 0);
      EXPECT_EQ(res.records[i].time, 40);
    }
  }
  EXPECT_TRUE(sawOffGPrime);
  EXPECT_TRUE(sawAckBound);
}

}  // namespace
}  // namespace ammb::mac
