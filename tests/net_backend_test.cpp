// The real UDP message-passing backend, bottom to top: the
// ExecutionBackend label codec, the wire format, the deterministic
// fault plan, engine lifecycle (immediate drain), and the loopback
// end-to-end acceptance bar — BMMB on a 16-node line with injected
// loss solves MMB over real sockets, its recorded trace passes
// checkTrace and the full oracle suite under phys::measureRealized
// fitted bounds, and an injected ack delay beyond a cleanly fitted
// Fack is flagged by the checker.
#include <gtest/gtest.h>

#include <memory>

#include "check/oracles.h"
#include "core/backend.h"
#include "core/experiment.h"
#include "graph/generators.h"
#include "mac/trace_checker.h"
#include "net/engine.h"
#include "net/fault.h"
#include "net/wire.h"
#include "phys/measurement.h"
#include "test_util.h"

namespace ammb {
namespace {

using core::ExecutionBackend;
using core::NetBackendParams;

namespace gen = graph::gen;

// --- label codec -------------------------------------------------------------

TEST(NetBackendUnit, LabelsAndRoundTrips) {
  EXPECT_EQ(ExecutionBackend().label(), "sim");
  EXPECT_EQ(ExecutionBackend::simBackend().label(), "sim");
  EXPECT_EQ(ExecutionBackend::netWith(NetBackendParams{}).label(), "net");

  NetBackendParams custom;
  custom.basePort = 19000;
  custom.loss = 0.25;
  custom.tickUs = 200;
  custom.gPrimeAttempts = 5;
  custom.ackDelayTicks = 12;
  custom.jitterUs = 300;
  EXPECT_EQ(ExecutionBackend::netWith(custom).label(),
            "net:19000,0.25,200,5,12,300");

  for (const std::string label :
       {"sim", "net", "net:19000,0.25,200,5,12,300", "net:0,0.1,100,3,0,0"}) {
    EXPECT_EQ(ExecutionBackend::fromLabel(label).label(), label) << label;
  }
  // The explicit default vector is the same backend as the shorthand
  // and canonicalizes back to it.
  EXPECT_EQ(ExecutionBackend::fromLabel("net:0,0,100,3,0,0"),
            ExecutionBackend::fromLabel("net"));
  EXPECT_EQ(ExecutionBackend::fromLabel("net:0,0,100,3,0,0").label(), "net");

  EXPECT_THROW(ExecutionBackend::fromLabel(""), Error);
  EXPECT_THROW(ExecutionBackend::fromLabel("Sim"), Error);
  EXPECT_THROW(ExecutionBackend::fromLabel("net:"), Error);
  EXPECT_THROW(ExecutionBackend::fromLabel("net:0,0.1"), Error);
  EXPECT_THROW(ExecutionBackend::fromLabel("net:0,0.1,100,3,0,0,extra"),
               Error);
  EXPECT_THROW(ExecutionBackend::fromLabel("tcp"), Error);
  // Labels that parse but violate NetBackendParams::validate().
  EXPECT_THROW(ExecutionBackend::fromLabel("net:80,0,100,3,0,0"), Error);
  EXPECT_THROW(ExecutionBackend::fromLabel("net:0,0.99,100,3,0,0"), Error);
  EXPECT_THROW(ExecutionBackend::fromLabel("net:0,0,0,3,0,0"), Error);
  EXPECT_THROW(ExecutionBackend::fromLabel("net:0,0,100,0,0,0"), Error);
}

// --- wire format -------------------------------------------------------------

TEST(NetBackendUnit, WireCodecRoundTrips) {
  net::WireDatagram data;
  data.kind = net::WireKind::kData;
  data.from = 7;
  for (int i = 0; i < 3; ++i) {
    net::WireMessage m;
    m.seq = 1000 + static_cast<std::uint64_t>(i);
    m.instance = 42 + i;
    m.packet.kind = mac::PacketKind::kData;
    m.packet.sender = 7;
    m.packet.tag = -3 + i;
    m.packet.bits = 0xdeadbeefcafe0000ULL + static_cast<std::uint64_t>(i);
    m.packet.msgs = {i, i + 1};
    data.messages.push_back(m);
  }
  const std::vector<std::uint8_t> bytes = net::encodeDatagram(data);
  const net::WireDatagram back = net::decodeDatagram(bytes.data(),
                                                     bytes.size());
  ASSERT_EQ(back.kind, net::WireKind::kData);
  EXPECT_EQ(back.from, 7);
  ASSERT_EQ(back.messages.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.messages[i].seq, data.messages[i].seq);
    EXPECT_EQ(back.messages[i].instance, data.messages[i].instance);
    EXPECT_EQ(back.messages[i].packet.sender, 7);
    EXPECT_EQ(back.messages[i].packet.tag, data.messages[i].packet.tag);
    EXPECT_EQ(back.messages[i].packet.bits, data.messages[i].packet.bits);
    EXPECT_EQ(back.messages[i].packet.msgs, data.messages[i].packet.msgs);
  }

  net::WireDatagram ack;
  ack.kind = net::WireKind::kAck;
  ack.from = 3;
  ack.acks = {1, 2, 0xffffffffffffffffULL};
  const std::vector<std::uint8_t> ackBytes = net::encodeDatagram(ack);
  const net::WireDatagram ackBack =
      net::decodeDatagram(ackBytes.data(), ackBytes.size());
  ASSERT_EQ(ackBack.kind, net::WireKind::kAck);
  EXPECT_EQ(ackBack.from, 3);
  EXPECT_EQ(ackBack.acks, ack.acks);
}

TEST(NetBackendUnit, WireCodecRejectsMalformedDatagrams) {
  net::WireDatagram dg;
  dg.kind = net::WireKind::kAck;
  dg.from = 1;
  dg.acks = {5};
  std::vector<std::uint8_t> bytes = net::encodeDatagram(dg);

  // Truncation, trailing garbage, bad magic, oversized batch.
  EXPECT_THROW(net::decodeDatagram(bytes.data(), bytes.size() - 1), Error);
  std::vector<std::uint8_t> longer = bytes;
  longer.push_back(0);
  EXPECT_THROW(net::decodeDatagram(longer.data(), longer.size()), Error);
  std::vector<std::uint8_t> badMagic = bytes;
  badMagic[0] ^= 0xff;
  EXPECT_THROW(net::decodeDatagram(badMagic.data(), badMagic.size()), Error);
  dg.acks.assign(net::kBatchLimit + 1, 9);
  EXPECT_THROW(net::encodeDatagram(dg), Error);
  EXPECT_THROW(net::decodeDatagram(bytes.data(), 0), Error);
}

// --- fault plan --------------------------------------------------------------

TEST(NetBackendUnit, FaultPlanIsAPureFunctionOfItsKey) {
  const net::FaultPlan plan(77, 0.5, 1000);
  const net::FaultPlan same(77, 0.5, 1000);
  const net::FaultPlan other(78, 0.5, 1000);
  int drops = 0;
  int divergences = 0;
  for (std::uint64_t seq = 1; seq <= 200; ++seq) {
    for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
      const bool d = plan.drop(1, 2, seq, attempt);
      // Reproducible regardless of evaluation order or repetition.
      EXPECT_EQ(d, same.drop(1, 2, seq, attempt));
      EXPECT_EQ(plan.delayUs(1, 2, seq, attempt),
                same.delayUs(1, 2, seq, attempt));
      EXPECT_LE(plan.delayUs(1, 2, seq, attempt), 1000);
      EXPECT_GE(plan.delayUs(1, 2, seq, attempt), 0);
      if (d) ++drops;
      if (d != other.drop(1, 2, seq, attempt)) ++divergences;
    }
  }
  // p = 0.5 over 600 attempts: both margins are astronomically safe.
  EXPECT_GT(drops, 200);
  EXPECT_LT(drops, 400);
  EXPECT_GT(divergences, 100);  // a different seed is a different plan

  // The directed link is part of the key.
  bool directional = false;
  for (std::uint64_t seq = 1; seq <= 64 && !directional; ++seq) {
    directional = plan.drop(1, 2, seq, 0) != plan.drop(2, 1, seq, 0);
  }
  EXPECT_TRUE(directional);

  const net::FaultPlan lossless(77, 0.0, 0);
  EXPECT_FALSE(lossless.active());
  for (std::uint64_t seq = 1; seq <= 64; ++seq) {
    EXPECT_FALSE(lossless.drop(1, 2, seq, 0));
    EXPECT_EQ(lossless.delayUs(1, 2, seq, 0), 0);
  }
  EXPECT_THROW(net::FaultPlan(1, 1.0, 0), Error);
  EXPECT_THROW(net::FaultPlan(1, -0.1, 0), Error);
}

// --- engine lifecycle --------------------------------------------------------

TEST(NetBackendEngine, IdleSystemDrainsImmediately) {
  const graph::DualGraph topology = gen::identityDual(gen::line(3));
  const graph::TopologyView view(topology);
  net::NetConfig config;
  config.tickUs = 100;
  net::NetEngine engine(view, testutil::stdParams(4, 32),
                        [](NodeId) { return std::make_unique<mac::Process>(); },
                        config);
  const sim::RunStatus status = engine.run(/*timeLimit=*/50'000);
  EXPECT_EQ(status, sim::RunStatus::kDrained);
  // Exactly the wake records, one per node.
  ASSERT_EQ(engine.trace().size(), 3u);
  for (const sim::TraceRecord& r : engine.trace().records()) {
    EXPECT_EQ(r.kind, sim::TraceKind::kWake);
  }
  EXPECT_EQ(engine.stats().bcasts, 0u);
  EXPECT_EQ(engine.now(), engine.now());  // frozen after the run
}

// --- loopback end-to-end -----------------------------------------------------

struct NetRun {
  core::MmbWorkload workload;
  core::RunConfig config;
  std::unique_ptr<core::Experiment> experiment;
  core::RunResult result;
  mac::MacParams envelope;
  phys::RealizedBounds realized;
  mac::MacParams fitted;
};

NetRun runBmmbOverNet(const graph::DualGraph& topology, int k,
                      const NetBackendParams& net, std::uint64_t seed) {
  NetRun run;
  run.workload = core::workloadAllAtNode(k, 0);
  run.config.mac = testutil::stdParams(4, 32);
  run.config.seed = seed;
  run.config.recordTrace = true;
  run.config.limits.maxTime = 150'000;  // ticks of wall clock; generous
  run.config.backend = ExecutionBackend::netWith(net);
  run.experiment = std::make_unique<core::Experiment>(
      topology, core::bmmbProtocol(), run.workload, run.config);
  run.result = run.experiment->run();
  run.envelope = core::effectiveMacParams(run.config);
  run.realized = phys::measureRealized(run.experiment->view(), run.envelope,
                                       run.experiment->trace(),
                                       run.result.endTime);
  run.fitted = phys::fittedParams(run.realized, run.envelope);
  return run;
}

TEST(NetBackendE2E, BmmbSolvesOnLossyLoopbackAndChecksGreen) {
  const graph::DualGraph topology = gen::identityDual(gen::line(16));
  NetBackendParams net;
  net.loss = 0.25;
  net.tickUs = 200;
  const NetRun run = runBmmbOverNet(topology, 4, net, 11);

  // Injected loss forces the ack/retransmit machinery to earn the
  // perfect-link semantics; the problem must still solve.
  ASSERT_TRUE(run.result.solved)
      << "status " << sim::toString(run.result.status);
  EXPECT_EQ(run.result.messages.completed, 4u);
  EXPECT_GE(run.result.stats.bcasts, 16u * 4u - 4u);  // every hop forwards
  // stopOnSolve halts at the final delivery, so instances still in
  // flight never reach their MAC-level ack (censored, not lost).
  EXPECT_LE(run.result.stats.acks, run.result.stats.bcasts);
  EXPECT_GT(run.result.stats.acks, 0u);

  // The recorded trace is a valid abstract-MAC execution under the
  // *measured* constants — the paper's abstraction, realized by UDP.
  ASSERT_TRUE(run.realized.measured());
  EXPECT_GT(run.realized.ackSamples, 0u);
  EXPECT_GT(run.realized.progSamples, 0u);
  const mac::CheckResult check =
      mac::checkTrace(run.experiment->view(), run.fitted,
                      run.experiment->trace(), run.result.endTime);
  EXPECT_TRUE(check.ok) << check.summary();
  const check::OracleReport report = check::checkExecution(
      run.experiment->view(), core::bmmbProtocol(), run.fitted, run.workload,
      run.experiment->trace(), run.result);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(NetBackendE2E, InjectedAckDelayIsFlaggedUnderCleanFittedBounds) {
  const graph::DualGraph topology = gen::identityDual(gen::line(8));

  // Fit Fack/Fprog from a clean loopback run...
  NetBackendParams clean;
  clean.tickUs = 200;
  const NetRun sane = runBmmbOverNet(topology, 3, clean, 13);
  ASSERT_TRUE(sane.result.solved);
  ASSERT_TRUE(sane.realized.measured());

  // ...then hold every MAC-level ack back for ~3x the fitted Fack.
  NetBackendParams delayed = clean;
  delayed.ackDelayTicks = sane.fitted.fack * 3 + 200;
  const NetRun wild = runBmmbOverNet(topology, 3, delayed, 13);
  ASSERT_TRUE(wild.result.solved);

  // The clean fitted bounds must NOT absolve the delayed run: its acks
  // exceed Fack, and the checker says exactly that.
  const mac::CheckResult check =
      mac::checkTrace(wild.experiment->view(), sane.fitted,
                      wild.experiment->trace(), wild.result.endTime);
  EXPECT_FALSE(check.ok);
  bool ackBound = false;
  for (const mac::Violation& v : check.records) {
    ackBound = ackBound || v.axiom == "ack-bound";
  }
  EXPECT_TRUE(ackBound) << check.summary();

  // Fitting the delayed run on its own terms absorbs the delay again —
  // the measured-bounds loop closes over the net backend too.
  ASSERT_TRUE(wild.realized.measured());
  EXPECT_GT(wild.fitted.fack, sane.fitted.fack);
  const mac::CheckResult own =
      mac::checkTrace(wild.experiment->view(), wild.fitted,
                      wild.experiment->trace(), wild.result.endTime);
  EXPECT_TRUE(own.ok) << own.summary();
}

}  // namespace
}  // namespace ammb
