// Property tests for the MIS subroutine (Section 4.2): independence
// and maximality must hold on grey-zone topologies across seeds and
// schedulers (its guarantees are w.h.p. over the nodes' coins, not over
// scheduler benevolence).
#include <gtest/gtest.h>

#include "core/mis.h"
#include "graph/generators.h"
#include "mac/schedulers.h"
#include "mac/trace_checker.h"
#include "test_util.h"

namespace ammb {
namespace {

namespace gen = graph::gen;
using core::FmmbParams;
using core::MisStatus;
using core::MisSuite;
using testutil::enhParams;

struct MisOutcome {
  std::vector<bool> inMis;
  std::vector<MisStatus> status;
};

MisOutcome runMis(const graph::DualGraph& topo, double c,
                  std::unique_ptr<mac::Scheduler> scheduler,
                  std::uint64_t seed, bool checkAxioms = true) {
  const auto params = FmmbParams::make(topo.n(), c);
  MisSuite suite(params);
  const auto macParams = enhParams(4, 64);
  mac::MacEngine engine(topo, macParams, std::move(scheduler),
                        suite.factory(), seed, /*traceEnabled=*/checkAxioms);
  const Time roundLen = macParams.fprog + 1;
  const Time misEnd = params.misRounds() * roundLen;
  engine.run(misEnd + roundLen);
  if (checkAxioms) {
    const auto check =
        mac::checkTrace(topo, macParams, engine.trace(), engine.now());
    EXPECT_TRUE(check.ok) << check.summary();
  }
  MisOutcome out;
  for (NodeId v = 0; v < topo.n(); ++v) {
    const auto& mis = suite.process(v).mis();
    out.inMis.push_back(mis.inMis());
    out.status.push_back(mis.status());
  }
  return out;
}

void expectValidMis(const graph::DualGraph& topo, const MisOutcome& out) {
  // Independence: no two G-neighbors both in the MIS.
  for (const auto& [u, v] : topo.g().edges()) {
    EXPECT_FALSE(out.inMis[static_cast<std::size_t>(u)] &&
                 out.inMis[static_cast<std::size_t>(v)])
        << "G-neighbors " << u << " and " << v << " both joined";
  }
  // Maximality: every node is in the MIS or has a G-neighbor in it.
  for (NodeId v = 0; v < topo.n(); ++v) {
    if (out.inMis[static_cast<std::size_t>(v)]) continue;
    bool covered = false;
    for (NodeId u : topo.g().neighbors(v)) {
      if (out.inMis[static_cast<std::size_t>(u)]) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "node " << v << " is uncovered";
  }
}

TEST(Mis, ValidOnGreyZoneUnitDisksAcrossSeeds) {
  Rng topoRng(31);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto topo = gen::greyZoneField(48, 7.0, 1.5, 0.4, topoRng);
    const auto out =
        runMis(topo, 1.5, std::make_unique<mac::RandomScheduler>(), seed);
    expectValidMis(topo, out);
  }
}

TEST(Mis, ValidUnderAdversarialScheduler) {
  Rng topoRng(77);
  const auto topo = gen::greyZoneField(40, 7.0, 1.5, 0.5, topoRng);
  const auto out = runMis(topo, 1.5,
                          std::make_unique<mac::AdversarialScheduler>(), 5);
  expectValidMis(topo, out);
}

TEST(Mis, ValidOnLineAndGridEmbeddings) {
  Rng rng(3);
  const auto lineTopo =
      gen::greyZoneFromPoints(gen::linePoints(30), 1.5, 0.5, rng);
  const auto out1 =
      runMis(lineTopo, 1.5, std::make_unique<mac::FastScheduler>(), 9);
  expectValidMis(lineTopo, out1);

  const auto gridTopo =
      gen::greyZoneFromPoints(gen::gridPoints(7, 5), 1.5, 0.3, rng);
  const auto out2 =
      runMis(gridTopo, 1.5, std::make_unique<mac::RandomScheduler>(), 9);
  expectValidMis(gridTopo, out2);
}

TEST(Mis, SingletonAndCompleteGraphEdgeCases) {
  // One node: it must elect itself.
  Rng rng(1);
  const auto single =
      gen::greyZoneFromPoints(gen::linePoints(1), 1.5, 0.0, rng);
  const auto out =
      runMis(single, 1.5, std::make_unique<mac::FastScheduler>(), 1);
  EXPECT_TRUE(out.inMis[0]);

  // A clique (all nodes within distance 1): exactly one node wins.
  graph::Embedding pts;
  for (int i = 0; i < 6; ++i) {
    pts.push_back({0.01 * i, 0.0});
  }
  const auto clique = gen::greyZoneFromPoints(std::move(pts), 1.5, 0.0, rng);
  const auto outClique =
      runMis(clique, 1.5, std::make_unique<mac::RandomScheduler>(), 2);
  int winners = 0;
  for (bool b : outClique.inMis) winners += b ? 1 : 0;
  EXPECT_EQ(winners, 1);
  expectValidMis(clique, outClique);
}

TEST(Mis, EveryNonMisNodeEndsPermanentlyInactive) {
  Rng topoRng(13);
  const auto topo = gen::greyZoneField(36, 7.0, 2.0, 0.3, topoRng);
  const auto out =
      runMis(topo, 2.0, std::make_unique<mac::RandomScheduler>(), 11);
  expectValidMis(topo, out);
  for (NodeId v = 0; v < topo.n(); ++v) {
    const auto s = out.status[static_cast<std::size_t>(v)];
    // After convergence a node either joined or heard a G-neighbor join.
    EXPECT_TRUE(s == MisStatus::kInMis || s == MisStatus::kPermInactive)
        << "node " << v << " ended in state " << static_cast<int>(s);
  }
}

TEST(Mis, DeterministicGivenSeed) {
  Rng topoRng(9);
  const auto topo = gen::greyZoneField(32, 7.0, 2.0, 0.3, topoRng);
  const auto a = runMis(topo, 2.0, std::make_unique<mac::RandomScheduler>(),
                        4, /*checkAxioms=*/false);
  const auto b = runMis(topo, 2.0, std::make_unique<mac::RandomScheduler>(),
                        4, /*checkAxioms=*/false);
  EXPECT_EQ(a.inMis, b.inMis);
}

}  // namespace
}  // namespace ammb
