// Unit tests for the scheduler family: plan shapes and progress-pick
// preferences, probed directly through a single-broadcast harness.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mac/engine.h"
#include "mac/schedulers.h"
#include "test_util.h"

namespace ammb::mac {
namespace {

namespace gen = graph::gen;
using testutil::stdParams;

class OneShot : public Process {
 public:
  void onWake(Context& ctx) override {
    if (ctx.id() != 0) return;
    Packet p;
    p.msgs = {0};
    ctx.bcast(std::move(p));
  }
};

MacEngine::ProcessFactory oneShotFactory() {
  return [](NodeId) { return std::make_unique<OneShot>(); };
}

/// Runs node 0 broadcasting once under `scheduler` on a line with one
/// arbitrary G'-edge from 0 to 3, and returns the engine for
/// inspection.
std::unique_ptr<MacEngine> runOneShot(std::unique_ptr<Scheduler> scheduler,
                                      const graph::DualGraph& topo) {
  auto engine = std::make_unique<MacEngine>(
      topo, stdParams(4, 32), std::move(scheduler), oneShotFactory(), 1);
  engine->run();
  return engine;
}

graph::DualGraph lineWithSkip() {
  graph::Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.finalize();
  graph::Graph gp(4);
  gp.addEdge(0, 1);
  gp.addEdge(1, 2);
  gp.addEdge(2, 3);
  gp.addEdge(0, 3);  // unreliable long edge
  gp.finalize();
  return {std::move(g), std::move(gp)};
}

TEST(FastScheduler, DeliversEverywhereImmediately) {
  const auto topo = lineWithSkip();
  const auto engine = runOneShot(std::make_unique<FastScheduler>(), topo);
  const Instance& inst = engine->instance(0);
  // G-neighbor 1 and G'-only neighbor 3 both receive at +1.
  EXPECT_EQ(inst.deliveredTo.size(), 2u);
  EXPECT_TRUE(inst.hasDeliveredTo(1));
  EXPECT_TRUE(inst.hasDeliveredTo(3));
  EXPECT_EQ(inst.termAt, 1);
}

TEST(FastScheduler, GPrimeDeliveryCanBeDisabled) {
  FastScheduler::Options opts;
  opts.deliverGPrime = false;
  const auto topo = lineWithSkip();
  const auto engine =
      runOneShot(std::make_unique<FastScheduler>(opts), topo);
  const Instance& inst = engine->instance(0);
  EXPECT_EQ(inst.deliveredTo.size(), 1u);
  EXPECT_FALSE(inst.hasDeliveredTo(3));
}

TEST(SlowAckScheduler, DeliversAtFprogAcksAtFack) {
  const auto topo = lineWithSkip();
  const auto engine = runOneShot(std::make_unique<SlowAckScheduler>(), topo);
  const Instance& inst = engine->instance(0);
  EXPECT_EQ(inst.deliveredTo.size(), 1u);  // no unreliable deliveries
  EXPECT_EQ(inst.termAt, 32);
  // The single rcv happened at bcast + fprog.
  for (const auto& rec : engine->trace().records()) {
    if (rec.kind == sim::TraceKind::kRcv) EXPECT_EQ(rec.t, 4);
  }
}

TEST(RandomScheduler, StaysWithinLegalWindows) {
  const auto topo = lineWithSkip();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto engine = std::make_unique<MacEngine>(
        topo, stdParams(4, 32), std::make_unique<RandomScheduler>(),
        oneShotFactory(), seed);
    engine->run();
    const Instance& inst = engine->instance(0);
    EXPECT_LE(inst.termAt, 32);
    for (const auto& rec : engine->trace().records()) {
      if (rec.kind != sim::TraceKind::kRcv) continue;
      EXPECT_GE(rec.t, 0);
      EXPECT_LE(rec.t, inst.termAt);
      if (rec.node == 1) EXPECT_LE(rec.t, 4);  // G-delivery within fprog
    }
  }
}

TEST(RandomScheduler, UnreliableProbabilityZeroAndOne) {
  const auto topo = lineWithSkip();
  RandomScheduler::Options never;
  never.pUnreliable = 0.0;
  auto e1 = runOneShot(std::make_unique<RandomScheduler>(never), topo);
  EXPECT_FALSE(e1->instance(0).hasDeliveredTo(3));

  RandomScheduler::Options always;
  always.pUnreliable = 1.0;
  auto e2 = runOneShot(std::make_unique<RandomScheduler>(always), topo);
  EXPECT_TRUE(e2->instance(0).hasDeliveredTo(3));

  RandomScheduler::Options bad;
  bad.pUnreliable = 1.5;
  EXPECT_THROW(RandomScheduler{bad}, Error);
}

TEST(AdversarialScheduler, DelaysToTheLastLegalInstant) {
  const auto topo = lineWithSkip();
  const auto engine =
      runOneShot(std::make_unique<AdversarialScheduler>(), topo);
  const Instance& inst = engine->instance(0);
  EXPECT_EQ(inst.termAt, 32);
  // Node 1's delivery was forced by the guard at exactly fprog —
  // everything later stays covered by the live instance.
  Time firstRcv = -1;
  for (const auto& rec : engine->trace().records()) {
    if (rec.kind == sim::TraceKind::kRcv && rec.node == 1) {
      firstRcv = rec.t;
      break;
    }
  }
  EXPECT_EQ(firstRcv, 4);
  EXPECT_EQ(engine->stats().forcedRcvs, 1u);
}

TEST(AdversarialScheduler, StuffingDeliversUnreliableEdgesEarly) {
  AdversarialScheduler::Options opts;
  opts.stuffUnreliable = true;
  const auto topo = lineWithSkip();
  const auto engine =
      runOneShot(std::make_unique<AdversarialScheduler>(opts), topo);
  Time stuffTime = -1;
  for (const auto& rec : engine->trace().records()) {
    if (rec.kind == sim::TraceKind::kRcv && rec.node == 3) stuffTime = rec.t;
  }
  EXPECT_EQ(stuffTime, 1);  // bcast + 1
}

// --- progress pick preferences ------------------------------------------------

/// Oracle declaring every packet useless for every node (so the
/// adversary's first preference always applies).
class AlwaysUseless : public ProtocolOracle {
 public:
  bool uselessFor(NodeId, const Packet&) const override { return true; }
};

TEST(AdversarialScheduler, PrefersUselessPick) {
  AdversarialScheduler sched;
  const auto topo = lineWithSkip();
  MacEngine engine(topo, stdParams(4, 32),
                   std::make_unique<AdversarialScheduler>(),
                   oneShotFactory(), 1);
  // Drive pickProgressDelivery directly through a second scheduler
  // object attached to the same engine.
  AlwaysUseless oracle;
  engine.setOracle(&oracle);
  sched.attach(engine);
  engine.run();
  // With the oracle saying "useless", the pick must be the first
  // candidate (the only live instance in this tiny run is id 0).
  const std::vector<InstanceId> candidates = {0};
  EXPECT_EQ(sched.pickProgressDelivery(1, candidates), 0);
}

TEST(Scheduler, DefaultPickTakesOldest) {
  class Dummy : public Scheduler {
   public:
    DeliveryPlan planBcast(const Instance&) override { return {}; }
  };
  Dummy d;
  EXPECT_EQ(d.pickProgressDelivery(0, {5, 7, 9}), 5);
}

}  // namespace
}  // namespace ammb::mac
