// The churn-reactive protocol layer, end to end: ReactionSpec labels,
// BMMB retransmit-on-recovery vs the stranding failure mode, the
// re-scoped dynamic liveness oracle (and its kDropOnRecovery negative
// fixture), the overflow-clamped fuzz time budget, the epoch-aware
// FMMB rebase under the parallel kernel, and the reaction axis through
// the sweep runner, emitters and spec files.
#include <gtest/gtest.h>

#include <limits>

#include "check/fuzzer.h"
#include "check/golden.h"
#include "check/mutation.h"
#include "check/oracles.h"
#include "core/reaction.h"
#include "graph/generators.h"
#include "graph/topology_view.h"
#include "runner/emit.h"
#include "runner/spec_io.h"
#include "runner/sweep_runner.h"
#include "test_util.h"

namespace ammb {
namespace {

namespace gen = graph::gen;
using check::ExecutionOutcome;
using check::FuzzCase;
using check::SchedulerMutation;
using check::TopologyFamily;
using check::WorkloadShape;
using core::ReactionSpec;

/// The stranding scenario this layer exists for: all k messages at the
/// head of a line, one early crash with a long outage (the victim can
/// be acked while its radio is down), and a recovery that restores the
/// full line well before the horizon.
FuzzCase strandingCase(std::uint64_t seed) {
  FuzzCase c;
  c.protocol = core::ProtocolKind::kBmmb;
  c.topology = TopologyFamily::kLine;
  c.n = 8;
  c.k = 2;
  c.workload = WorkloadShape::kAllAtZero;
  c.scheduler = core::SchedulerKind::kFast;
  c.mac = testutil::stdParams(4, 32);
  c.dynamics.kind = core::DynamicsSpec::Kind::kCrash;
  c.dynamics.crashes = 1;
  c.dynamics.period = 6;
  c.dynamics.downFor = 5;
  c.maxTime = check::bmmbFuzzTimeBudget(c.n, c.k, c.mac.fack);
  c.seed = seed;
  return c;
}

TEST(ReactionSpecUnit, LabelsRoundTrip) {
  EXPECT_EQ(ReactionSpec{}.label(), "none");
  ReactionSpec r;
  r.kind = ReactionSpec::Kind::kRetransmit;
  EXPECT_EQ(r.label(), "retransmit");
  r.kind = ReactionSpec::Kind::kRetransmitRemis;
  EXPECT_EQ(r.label(), "retransmit+remis");
  EXPECT_TRUE(r.remis());
  for (const char* label : {"none", "retransmit", "retransmit+remis"}) {
    EXPECT_EQ(ReactionSpec::fromLabel(label).label(), label);
  }
  EXPECT_THROW(ReactionSpec::fromLabel("bogus"), Error);
}

TEST(ReactionProtocol, RetransmitSolvesWhereNoneStrands) {
  int stranded = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const ExecutionOutcome off = check::runCase(strandingCase(seed));
    ASSERT_TRUE(off.error.empty()) << off.error;
    // Reaction-free churn runs keep the liveness oracle suspended: a
    // stranded run is a measurement of the paper's protocol under
    // churn, not a checker violation.
    EXPECT_TRUE(off.report.ok) << off.report.summary();
    if (!off.result.solved &&
        off.result.status == sim::RunStatus::kDrained) {
      ++stranded;
    }

    FuzzCase reactive = strandingCase(seed);
    reactive.reaction.kind = ReactionSpec::Kind::kRetransmit;
    const ExecutionOutcome on = check::runCase(reactive);
    ASSERT_TRUE(on.error.empty()) << on.error;
    EXPECT_TRUE(on.report.ok) << on.report.summary();
    // The restored oracle polices exactly this: a reactive run whose
    // final epoch restores connectivity must solve.
    EXPECT_TRUE(on.result.solved) << "seed " << seed;
    if (!off.result.solved) {
      EXPECT_GT(on.result.retransmits, 0u) << "seed " << seed;
    }
  }
  // The schedule is tuned so the reaction-free protocol actually
  // strands somewhere in the seed range — otherwise the comparison
  // above proves nothing.
  EXPECT_GE(stranded, 1);
}

TEST(ReactionOracle, QuiescedReactiveRunWithRecoveryIsAViolation) {
  // kDropOnRecovery suppresses the epoch notifications an honest
  // engine delivers, so the reactive protocol never re-arms: the run
  // drains unsolved even though the final epoch restored connectivity
  // — exactly the quiesced shape the re-scoped liveness oracle exists
  // to flag.
  int flagged = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    FuzzCase c = strandingCase(seed);
    c.reaction.kind = ReactionSpec::Kind::kRetransmit;
    const ExecutionOutcome outcome =
        check::runCase(c, SchedulerMutation::kDropOnRecovery);
    ASSERT_TRUE(outcome.error.empty()) << outcome.error;
    if (!outcome.report.ok) {
      ++flagged;
      EXPECT_NE(outcome.report.summary().find("liveness:"),
                std::string::npos)
          << outcome.report.summary();
    }
  }
  EXPECT_GE(flagged, 1);
}

TEST(ReactionOracle, FinalEpochConnectivityScoping) {
  const auto base = gen::identityDual(gen::line(6));
  EXPECT_TRUE(
      check::finalEpochRestoresConnectivity(graph::TopologyView(base)));

  // A crash that never heals ends the run partitioned: the oracle
  // stays suspended no matter how reactive the protocol is.
  graph::TopologyDynamics crashOnly;
  crashOnly.epochs.push_back(
      {8, {{graph::TopologyEvent::Kind::kNodeCrash, 2, kNoNode, false}}});
  EXPECT_FALSE(check::finalEpochRestoresConnectivity(
      graph::TopologyView(base, crashOnly)));

  graph::TopologyDynamics healed = crashOnly;
  healed.epochs.push_back(
      {16, {{graph::TopologyEvent::Kind::kNodeRecover, 2, kNoNode, false}}});
  EXPECT_TRUE(check::finalEpochRestoresConnectivity(
      graph::TopologyView(base, healed)));
}

TEST(ReactionBudget, FuzzTimeBudgetClampsInsteadOfOverflowing) {
  EXPECT_EQ(check::bmmbFuzzTimeBudget(8, 2, 32),
            Time{8} * (8 + 2) * 32 + 4096);
  // Large but representable stays exact — the clamp must not round.
  EXPECT_EQ(check::bmmbFuzzTimeBudget(1000, 6, 1'000'000),
            Time{8} * 1006 * 1'000'000 + 4096);
  // The naive 8 * (n + k) * fack wraps Time negative on these corners
  // (shrinker- and hand-reproduction-reachable); the checked budget
  // saturates to "no time limit" instead of truncating the run at 0.
  const Time huge = std::numeric_limits<Time>::max() / 4;
  EXPECT_EQ(check::bmmbFuzzTimeBudget(2, 1, huge), kTimeNever);
  EXPECT_EQ(check::bmmbFuzzTimeBudget(1'000'000, 1'000'000, huge),
            kTimeNever);
}

TEST(ReactionProtocol, FmmbRemisRebasesAcrossDriftBitIdentically) {
  // The committed golden scenario: the first drift boundary lands
  // mid-MIS-phase, so the rebase restarts an in-flight stage.
  FuzzCase c;
  bool found = false;
  for (const check::GoldenCase& gc : check::goldenCaseSuite()) {
    if (gc.name == "fmmb-drift-remis") {
      c = gc.fuzzCase;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  ASSERT_EQ(c.protocol, core::ProtocolKind::kFmmb);
  ASSERT_TRUE(c.reaction.remis());
  const ExecutionOutcome serial = check::runCase(
      c, SchedulerMutation::kNone, /*keepCanonicalTrace=*/true);
  ASSERT_TRUE(serial.error.empty()) << serial.error;
  EXPECT_TRUE(serial.report.ok) << serial.report.summary();
  // Every node rebases at every drift boundary, so the rebase counter
  // proves the remis path actually ran.
  EXPECT_GT(serial.result.retransmits, 0u);
  for (const int workers : {1, 4, 8}) {
    FuzzCase p = c;
    p.kernel = sim::KernelSpec::parallelWith(workers);
    const ExecutionOutcome parallel = check::runCase(
        p, SchedulerMutation::kNone, /*keepCanonicalTrace=*/true);
    ASSERT_TRUE(parallel.error.empty()) << parallel.error;
    EXPECT_EQ(parallel.traceHash, serial.traceHash) << workers;
    EXPECT_EQ(parallel.canonicalTrace, serial.canonicalTrace) << workers;
    EXPECT_EQ(parallel.result.retransmits, serial.result.retransmits);
  }
}

TEST(ReactionSweep, AxisDoublesCellsAndEmittersCarryReaction) {
  runner::SweepSpec spec;
  spec.name = "react-axis";
  spec.topologies = {runner::lineTopology(8)};
  spec.schedulers = {core::SchedulerKind::kFast};
  spec.ks = {2};
  spec.macs = {{"f4a32", testutil::stdParams(4, 32)}};
  spec.workloads = {runner::allAtNodeWorkload(0)};
  spec.dynamics = {runner::crashDynamics(1, 6, 5)};
  spec.reactions = {ReactionSpec{}, ReactionSpec::fromLabel("retransmit")};
  spec.seedBegin = 1;
  spec.seedEnd = 5;
  spec.check = runner::CheckMode::kFull;

  ASSERT_EQ(spec.cellCount(), 2u);
  const runner::SweepResult result = runner::SweepRunner().run(spec);
  EXPECT_EQ(result.errorCount(), 0u);
  EXPECT_EQ(result.checkViolationCount(), 0u);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].reaction, "none");
  EXPECT_EQ(result.cells[1].reaction, "retransmit");
  EXPECT_EQ(result.cells[0].retransmits, 0u);
  // The acceptance shape of the whole layer: the reactive cell solves
  // everything, and strictly beats the reaction-free cell whenever the
  // latter stranded a run.
  EXPECT_EQ(result.cells[1].solved, result.cells[1].runs);
  EXPECT_GE(result.cells[1].solved, result.cells[0].solved);
  if (result.cells[0].solved < result.cells[0].runs) {
    EXPECT_GT(result.cells[1].retransmits, 0u);
  }

  // Cell JSON carries the reaction only for reactive cells, so every
  // pre-reaction baseline stays byte-identical.
  const std::string json = runner::toJson(result);
  EXPECT_NE(json.find("\"reaction\": \"retransmit\""), std::string::npos);
  EXPECT_EQ(json.find("\"reaction\": \"none\""), std::string::npos);
  const std::string csv = runner::cellsCsv(result);
  EXPECT_NE(csv.find(",reaction,"), std::string::npos);
  EXPECT_NE(csv.find(",retransmits,"), std::string::npos);
}

TEST(ReactionSweep, RecordJsonRoundTripsReactionCoordinate) {
  runner::RunRecord record;
  record.point.runIndex = 3;
  record.point.cellIndex = 1;
  record.point.reactIdx = 1;
  record.result.retransmits = 7;
  const runner::RunRecord back =
      runner::recordFromJson(runner::recordToJson(record), "test");
  EXPECT_EQ(back.point.reactIdx, 1u);
  EXPECT_EQ(back.result.retransmits, 7u);

  // Reaction-free records omit both keys, so files from before the
  // axis existed (and every reaction-free journal/shard) keep their
  // exact bytes and still parse.
  const runner::RunRecord plain;
  const std::string dumped =
      runner::json::dump(runner::recordToJson(plain), 0);
  EXPECT_EQ(dumped.find("react_idx"), std::string::npos);
  EXPECT_EQ(dumped.find("retransmits"), std::string::npos);
  const runner::RunRecord plainBack =
      runner::recordFromJson(runner::recordToJson(plain), "test");
  EXPECT_EQ(plainBack.point.reactIdx, 0u);
  EXPECT_EQ(plainBack.result.retransmits, 0u);
}

TEST(ReactionSweep, SpecFileReactionsRoundTripAndRefingerprint) {
  const runner::SpecDoc doc = runner::loadSpecFile(
      std::string(AMMB_SWEEPS_DIR) + "/churn_react_grid.json");
  ASSERT_EQ(doc.reactions.size(), 2u);
  EXPECT_EQ(doc.reactions[0].label(), "none");
  EXPECT_EQ(doc.reactions[1].label(), "retransmit");
  runner::buildSweep(doc);  // full semantic validation

  const std::string canonical = runner::writeSpec(doc);
  EXPECT_NE(canonical.find("\"reactions\""), std::string::npos);
  EXPECT_EQ(runner::writeSpec(runner::parseSpec(canonical)), canonical);

  // The default axis is elided, so pre-reaction spec files keep their
  // canonical bytes — and a reactive axis changes the fingerprint, so
  // reactive shards can never merge against the reaction-free campaign.
  runner::SpecDoc defaulted = doc;
  defaulted.reactions = {ReactionSpec{}};
  EXPECT_EQ(runner::writeSpec(defaulted).find("\"reactions\""),
            std::string::npos);
  EXPECT_NE(runner::specFingerprint(doc),
            runner::specFingerprint(defaulted));
}

}  // namespace
}  // namespace ammb
