// Broad cross-module integration sweep: BMMB on every structured
// topology family x workload shape x scheduler, with full axiom and
// problem-level validation on each cell.  This is the suite's safety
// net against regressions anywhere in the stack (graph generators,
// engine, guard, schedulers, protocol, checkers).
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.h"
#include "graph/generators.h"
#include "mac/trace_checker.h"
#include "test_util.h"

namespace ammb {
namespace {

using core::RunConfig;
using core::SchedulerKind;
namespace gen = graph::gen;
using testutil::stdParams;

enum class Family { kLine, kRing, kGrid, kTree, kStar, kGreyField };
enum class Shape { kAllAtOne, kRoundRobin, kRandomNodes, kOnline };

graph::DualGraph makeTopology(Family family, std::uint64_t seed) {
  Rng rng(seed * 31 + 7);
  switch (family) {
    case Family::kLine:
      return gen::withRRestrictedNoise(gen::line(18), 2, 0.5, rng);
    case Family::kRing:
      return gen::withArbitraryNoise(gen::ring(16), 5, rng);
    case Family::kGrid:
      return gen::identityDual(gen::grid(5, 4));
    case Family::kTree:
      return gen::withArbitraryNoise(gen::randomTree(20, rng), 6, rng);
    case Family::kStar:
      return gen::identityDual(gen::star(12));
    case Family::kGreyField:
      return gen::greyZoneField(24, 7.0, 1.5, 0.4, rng);
  }
  throw Error("unreachable");
}

core::MmbWorkload makeWorkload(Shape shape, NodeId n, std::uint64_t seed) {
  Rng rng(seed * 13 + 3);
  switch (shape) {
    case Shape::kAllAtOne: return core::workloadAllAtNode(4, 0);
    case Shape::kRoundRobin: return core::workloadRoundRobin(4, n);
    case Shape::kRandomNodes: return core::workloadRandom(4, n, rng);
    case Shape::kOnline: return core::workloadOnline(4, n, 30, rng);
  }
  throw Error("unreachable");
}

class BmmbIntegration
    : public ::testing::TestWithParam<
          std::tuple<Family, Shape, SchedulerKind>> {};

TEST_P(BmmbIntegration, SolvesAndSatisfiesEveryAxiom) {
  const auto [family, shape, sched] = GetParam();
  const auto topo = makeTopology(family, 1);
  const auto workload = makeWorkload(shape, topo.n(), 1);
  RunConfig config;
  config.mac = stdParams(4, 48);
  config.scheduler = sched;
  core::Experiment experiment(topo, core::bmmbProtocol(), workload,
                              config);
  const auto result = experiment.run();
  ASSERT_TRUE(result.solved);
  const auto macCheck = mac::checkTrace(topo, config.mac,
                                        experiment.engine().trace());
  EXPECT_TRUE(macCheck.ok) << macCheck.summary();
  const auto mmbCheck =
      core::checkMmbTrace(topo, workload, experiment.engine().trace());
  EXPECT_TRUE(mmbCheck.ok)
      << (mmbCheck.ok ? "" : mmbCheck.violations.front());
  // Generic sanity: solve time respects the universal Theorem 3.1
  // bound whenever the topology is G-connected and arrivals are at
  // t=0 (online workloads shift by the last arrival).
  if (topo.g().connected() && shape != Shape::kOnline) {
    EXPECT_LE(result.solveTime,
              core::bmmbArbitraryBound(topo.g().diameter(), workload.k,
                                       config.mac));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BmmbIntegration,
    ::testing::Combine(
        ::testing::Values(Family::kLine, Family::kRing, Family::kGrid,
                          Family::kTree, Family::kStar, Family::kGreyField),
        ::testing::Values(Shape::kAllAtOne, Shape::kRoundRobin,
                          Shape::kRandomNodes, Shape::kOnline),
        ::testing::Values(SchedulerKind::kFast, SchedulerKind::kRandom,
                          SchedulerKind::kSlowAck,
                          SchedulerKind::kAdversarial)));

}  // namespace
}  // namespace ammb
