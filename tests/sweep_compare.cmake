# Runs a sweep spec and gates its aggregate against the committed
# baseline: the ctest-level form of the CI "run + compare" pipeline,
# one test per baselined campaign.
#
#   cmake -DAMMB_SWEEP=... -DSPEC=... -DBASELINE=... -DWORKDIR=...
#         -P sweep_compare.cmake
foreach(var AMMB_SWEEP SPEC BASELINE WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
get_filename_component(stem "${SPEC}" NAME_WE)
set(result "${WORKDIR}/${stem}.json")

execute_process(
  COMMAND "${AMMB_SWEEP}" run "${SPEC}" --threads 2 --json "${result}"
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "ammb_sweep run ${SPEC} failed (rc=${run_rc})")
endif()

execute_process(
  COMMAND "${AMMB_SWEEP}" compare "${result}" --baseline "${BASELINE}"
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
          "ammb_sweep compare against ${BASELINE} failed (rc=${compare_rc})")
endif()
